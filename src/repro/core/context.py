"""RaSQLContext — the session front door (the analog of a SparkSession).

Typical use::

    from repro import RaSQLContext

    ctx = RaSQLContext(num_workers=4)
    ctx.register_table("edge", ["Src", "Dst", "Cost"], rows)
    result = ctx.sql('''
        WITH recursive path(Dst, min() AS Cost) AS
          (SELECT 1, 0) UNION
          (SELECT edge.Dst, path.Cost + edge.Cost
           FROM path, edge WHERE path.Dst = edge.Src)
        SELECT Dst, Cost FROM path
    ''')

``sql`` runs the full pipeline of Section 5: parse → two-step analysis →
rule-based optimization → physical planning → fixpoint execution for every
recursive clique → the final stratum on the local executor.  Execution
statistics for the last query (iterations, cluster metrics, simulated
time) are kept on :attr:`last_run`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Sequence

from repro.core.analyzer import analyze
from repro.core.catalog import Catalog
from repro.core.checkpoint import (
    CheckpointStore,
    CliqueCheckpointer,
    catalog_fingerprint,
    make_query_id,
)
from repro.core.config import DEFAULT_CONFIG, ExecutionConfig
from repro.core.executor import execute_select
from repro.core.fixpoint import FixpointOperator
from repro.core.governor import QueryGovernor
from repro.core.logical import CliquePlan, DerivedViewPlan, ScanNode
from repro.core.optimizer import optimize
from repro.core.parser import parse
from repro.core.planner import plan_clique
from repro.engine.cluster import Cluster
from repro.engine.serialization import rows_size
from repro.errors import (
    CheckpointError,
    CheckpointNotFoundError,
    PoisonTaskError,
    QueryDeadlineExceededError,
)
from repro.relation import Relation


@dataclass
class RunInfo:
    """Execution statistics of the most recent ``sql`` call."""

    iterations: int = 0
    clique_iterations: dict[str, int] = field(default_factory=dict)
    delta_history: dict[str, list[int]] = field(default_factory=dict)
    sim_time: float = 0.0
    metrics: dict[str, float] = field(default_factory=dict)
    #: Simulated seconds attributed to each clock label during this call
    #: (``stage:fixpoint-shufflemap``, ``shuffle``, ``broadcast``, ...).
    time_breakdown: dict[str, float] = field(default_factory=dict)
    #: Serialized span tree of this call (see ``repro.engine.tracing``):
    #: query -> fixpoint -> iteration -> stage -> task, each with
    #: simulated duration, counter deltas, and per-view delta sizes.
    trace: dict | None = None
    #: Where the cProfile capture of this call was written (``sql``'s
    #: ``profile_path`` argument / the CLI's ``--profile``), or ``None``.
    profile_path: str | None = None
    #: The durable-checkpoint query id of this call (``None`` when
    #: checkpointing was off); :meth:`repro.RaSQLContext.resume` takes it.
    query_id: str | None = None
    #: The checkpointed iteration this call resumed from (0 = ran from
    #: scratch, whether or not checkpointing was on).
    resumed_from: int = 0

    def explain_analyze(self) -> str:
        """Per-iteration timeline of the traced run (EXPLAIN ANALYZE)."""
        from repro.engine.tracing import format_explain_analyze

        return format_explain_analyze(self.trace)

    def iteration_timeline(self) -> list[dict]:
        """One dict per fixpoint iteration: delta sizes, times, bytes."""
        from repro.engine.tracing import iteration_timeline

        return iteration_timeline(self.trace) if self.trace else []

    def memory_summary(self) -> dict[str, float]:
        """Memory-governance counters of the run (zeros when untouched).

        Keys: ``spill_events``, ``spill_bytes``, ``unspill_events``,
        ``unspill_bytes``, ``memory_pressure_events``,
        ``memory_budget_overflows``, plus the per-worker high-water
        marks ``memory_hwm_bytes_w<N>``.
        """
        keys = ("spill_events", "spill_bytes", "unspill_events",
                "unspill_bytes", "memory_pressure_events",
                "memory_budget_overflows")
        out = {key: self.metrics.get(key, 0) for key in keys}
        for key, value in self.metrics.items():
            if key.startswith("memory_hwm_bytes_w"):
                out[key] = value
        return out

    def kernels_summary(self) -> dict[str, float]:
        """Kernel-layer counters of the run (zeros when kernels are off).

        Keys: ``kernel_state_cache_hits``, ``kernel_state_cache_misses``,
        ``kernel_state_cache_updates``, ``kernel_state_cache_bypass``,
        ``adaptive_join_hash``, ``adaptive_join_sort_merge``,
        ``adaptive_join_nested_loop``, ``adaptive_join_overrides``,
        ``kernel_grouped_fixpoint_stages``, ``kernel_fused_fixpoint_stages``,
        ``kernel_small_input_gate`` (cliques the size gate routed through
        the reference loops; see ``ExecutionConfig.kernel_min_rows``),
        plus the columnar batch layer: ``columnar_batches_encoded``,
        ``columnar_batches_decoded``, ``columnar_batch_rows``,
        ``columnar_routes``, ``columnar_rows_deduped`` (see
        ``ExecutionConfig.columnar_batches``).
        """
        keys = ("kernel_state_cache_hits", "kernel_state_cache_misses",
                "kernel_state_cache_updates", "kernel_state_cache_bypass",
                "adaptive_join_hash", "adaptive_join_sort_merge",
                "adaptive_join_nested_loop", "adaptive_join_overrides",
                "kernel_grouped_fixpoint_stages",
                "kernel_fused_fixpoint_stages",
                "kernel_small_input_gate",
                "columnar_batches_encoded", "columnar_batches_decoded",
                "columnar_batch_rows", "columnar_routes",
                "columnar_rows_deduped")
        return {key: self.metrics.get(key, 0) for key in keys}

    def checkpoint_summary(self) -> dict[str, float]:
        """Durability counters of the run (zeros when checkpointing off).

        Keys: ``checkpoint_writes``, ``checkpoint_bytes``,
        ``checkpoint_restores``, ``checkpoint_restore_bytes``.
        """
        keys = ("checkpoint_writes", "checkpoint_bytes",
                "checkpoint_restores", "checkpoint_restore_bytes")
        return {key: self.metrics.get(key, 0) for key in keys}

    def fault_summary(self) -> dict[str, float]:
        """Recovery counters of the run (zeros when nothing failed).

        Keys: ``task_attempts``, ``task_failures``, ``workers_lost``,
        ``workers_blacklisted``, ``speculative_tasks``,
        ``recovery_seconds``, ``cache_invalidated_partitions``,
        ``cache_invalidated_bytes``.
        """
        keys = ("task_attempts", "task_failures", "workers_lost",
                "workers_blacklisted", "speculative_tasks",
                "recovery_seconds", "cache_invalidated_partitions",
                "cache_invalidated_bytes")
        return {key: self.metrics.get(key, 0) for key in keys}

    def supervision_summary(self) -> dict[str, float]:
        """Process-backend supervision counters (zeros when the run was
        simulated or the pool stayed healthy).

        Keys: ``process_tasks_shipped``, ``process_tasks_driver_local``,
        ``process_heartbeats``, ``process_heartbeats_missed``,
        ``process_worker_reaps``, ``process_worker_respawns``,
        ``process_worker_crashes``, ``process_tasks_quarantined``,
        ``process_backend_degradations``, ``process_payload_bytes``,
        plus the batch-IPC wire counters: ``process_task_messages``
        (pipe sends carrying tasks, after coalescing),
        ``process_install_bytes`` (heavy install blobs actually shipped)
        and ``process_payload_bytes_saved`` (install bytes skipped via
        the worker-side base-partition cache).
        """
        keys = ("process_tasks_shipped", "process_tasks_driver_local",
                "process_heartbeats", "process_heartbeats_missed",
                "process_worker_reaps", "process_worker_respawns",
                "process_worker_crashes", "process_tasks_quarantined",
                "process_backend_degradations", "process_payload_bytes",
                "process_task_messages", "process_install_bytes",
                "process_payload_bytes_saved")
        return {key: self.metrics.get(key, 0) for key in keys}

    def profile_report(self) -> str:
        """An EXPLAIN-ANALYZE-style breakdown of where the time went."""
        total = sum(self.time_breakdown.values()) or 1.0
        lines = ["where the simulated time went",
                 "-----------------------------"]
        for label, seconds in sorted(self.time_breakdown.items(),
                                     key=lambda kv: -kv[1]):
            share = 100.0 * seconds / total
            lines.append(f"{label:32s} {seconds:8.4f}s  {share:5.1f}%")
        lines.append(f"{'total':32s} {total:8.4f}s")
        return "\n".join(lines)


@lru_cache(maxsize=32)
def _gated_config(config: ExecutionConfig) -> ExecutionConfig:
    """The reference-path twin of a config (kernel gate engaged).

    Cached because the gate fires per executed query — a served
    small-query workload would otherwise rebuild the frozen dataclass
    thousands of times.
    """
    return config.but(kernels=False, adaptive_joins=False)


def _clique_input_rows(unit: CliquePlan, resolve) -> int:
    """Total distinct base-table rows feeding one recursive clique.

    The input of the size gate (``ExecutionConfig.kernel_min_rows``):
    counts each scanned base relation once, ignoring clique-internal
    recursive references.
    """
    clique_views = {name.lower() for name in unit.view_names}
    seen: set[str] = set()
    total = 0
    for view in unit.views:
        for rule in view.base_rules + view.recursive_rules:
            if rule.join is None:
                continue
            for node in rule.join.inputs:
                if isinstance(node, ScanNode):
                    key = node.relation.lower()
                    if key in clique_views or key in seen:
                        continue
                    seen.add(key)
                    total += len(resolve(node.relation).rows)
    return total


def _query_label(query: str) -> str:
    """A short one-line identifier for a query's trace span."""
    first_line = next((line.strip() for line in query.strip().splitlines()
                       if line.strip()), "query")
    return first_line[:72]


class RaSQLContext:
    """A RaSQL session bound to one simulated cluster."""

    def __init__(self, num_workers: int = 4, num_partitions: int | None = None,
                 config: ExecutionConfig | None = None,
                 cluster: Cluster | None = None,
                 governor: QueryGovernor | None = None, **cluster_kwargs):
        if cluster is None:
            # Validate here (not just in Cluster) so a bad session spec
            # fails with a message phrased in RaSQLContext terms.
            if not isinstance(num_workers, int) or num_workers < 1:
                raise ValueError(
                    f"RaSQLContext needs at least one worker; got "
                    f"num_workers={num_workers!r}")
            if num_partitions is not None and (
                    not isinstance(num_partitions, int) or num_partitions < 1):
                raise ValueError(
                    f"RaSQLContext needs at least one partition (or None "
                    f"for one per worker); got "
                    f"num_partitions={num_partitions!r}")
        if cluster is None and (config or DEFAULT_CONFIG).backend == "process":
            cluster_kwargs.setdefault("backend", "process")
        self.cluster = cluster or Cluster(
            num_workers=num_workers, num_partitions=num_partitions,
            **cluster_kwargs)
        self.catalog = Catalog()
        self.config = config or DEFAULT_CONFIG
        self.governor = governor or QueryGovernor(
            metrics=self.cluster.metrics)
        if self.governor.metrics is None:
            self.governor.metrics = self.cluster.metrics
        self.last_run = RunInfo()

    def close(self) -> None:
        """Release cluster resources (the process pool, if any).

        Idempotent; the simulated backend makes this a no-op, and the
        process backend also tears itself down atexit, so calling close
        is only required when a program creates many contexts.
        """
        self.cluster.shutdown()

    # ------------------------------------------------------------------
    # catalog management
    # ------------------------------------------------------------------

    def register_table(self, name: str, columns: Sequence[str],
                       rows: Iterable[Sequence] | None = None) -> Relation:
        """Register a base table (no load-time charge)."""
        return self.catalog.register(name, columns, rows)

    def load_table(self, name: str, columns: Sequence[str],
                   rows: Iterable[Sequence]) -> Relation:
        """Register a base table and charge simulated load time.

        The paper's end-to-end figures include data loading; benchmarks use
        this variant so the simulated clock covers the same span.
        """
        relation = self.catalog.register(name, columns, rows)
        self.cluster.load(relation.rows, key_indices=(0,) if relation.columns else None)
        return relation

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def inject_faults(self, *injectors) -> "RaSQLContext":
        """Arm fault injectors on the session's cluster; returns self.

        Accepts any mix of :class:`repro.engine.faults.FailureInjector`,
        :class:`repro.engine.faults.WorkerLossInjector`,
        :class:`repro.engine.faults.MemoryPressureInjector`,
        :class:`repro.engine.faults.CorruptionInjector` (mangles one
        shuffle bucket; caught by checksum verification), and
        :class:`repro.engine.faults.DriverKillInjector` (raises
        :class:`repro.errors.DriverCrashError` before a matching stage —
        pair with durable checkpoints and :meth:`resume`).
        """
        for injector in injectors:
            self.cluster.inject_failures(injector)
        return self

    # ------------------------------------------------------------------
    # query execution
    # ------------------------------------------------------------------

    def _estimate_query_bytes(self, query: str) -> int:
        """Admission-time memory estimate: sizes of referenced base tables.

        A deliberately cheap, pre-parse heuristic (Spark's resource
        profiles likewise reserve from static estimates): any registered
        table whose name appears as a word in the query text counts at
        its full sampled size.
        """
        words = {w.lower() for w in re.findall(r"[A-Za-z_][A-Za-z_0-9]*",
                                               query)}
        total = 0
        for name in self.catalog.names():
            if name in words:
                total += rows_size(self.catalog.get(name).rows)
        return total

    def analyze_query(self, query: str,
                      config: ExecutionConfig | None = None):
        """Parse → analyze → optimize a script against the live catalog.

        The returned analyzed script is the expensive, reusable front
        half of :meth:`sql`; ``repro.serving``'s plan cache stores it
        keyed on the normalized text and :attr:`Catalog.version` (name
        resolution binds to the schema epoch), then replays it through
        :meth:`execute_admitted` without re-planning.
        """
        effective = config or self.config
        return optimize(analyze(parse(query), self.catalog),
                        magic_filters=effective.magic_filters)

    def sql(self, query: str, config: ExecutionConfig | None = None,
            profile_path: str | None = None,
            query_id: str | None = None) -> Relation:
        """Execute a RaSQL script and return the final SELECT's relation.

        Resource governance brackets the whole call: the session's
        :class:`repro.core.governor.QueryGovernor` must admit the query
        first (queueing or rejecting it), worker memory accounting starts
        from a clean slate, and — when the config sets
        ``deadline_seconds`` — the cluster's cooperative deadline is
        armed.  A deadline abort re-raises with the partial trace
        attached and recorded on :attr:`last_run`.

        When the config enables durable checkpointing
        (``checkpoint_interval`` > 0 and ``checkpoint_dir`` set), the
        fixpoint operator persists its working set every N iterations
        under ``query_id`` (default: :func:`make_query_id` of the text);
        a crashed or deadline-killed call is continued by
        :meth:`resume`.

        ``profile_path`` wraps the execution (planning through the final
        stratum, excluding admission) in :mod:`cProfile` and dumps the
        pstats capture there; the path lands on
        :attr:`RunInfo.profile_path`.  Inspect with
        ``python -m pstats PATH``.
        """
        effective = config or self.config
        label = _query_label(query)
        ticket = self.governor.admit(label, self._estimate_query_bytes(query))
        admission = {"queued": ticket.queued, "wait_s": ticket.wait_s,
                     "reserved_bytes": ticket.reserved_bytes}
        try:
            return self.execute_admitted(query, effective, label=label,
                                         profile_path=profile_path,
                                         admission=admission,
                                         query_id=query_id)
        finally:
            self.governor.release(ticket)

    def execute_admitted(self, query: str,
                         config: ExecutionConfig | None = None, *,
                         label: str | None = None,
                         profile_path: str | None = None,
                         analyzed=None,
                         admission: dict | None = None,
                         query_id: str | None = None,
                         resume_state: dict | None = None) -> Relation:
        """Run an *already admitted* query (the back half of :meth:`sql`).

        The caller owns the governor ticket — acquiring it before this
        call and releasing it after, on success and error paths alike.
        ``repro.serving.QueryService`` admits at submit time, dispatches
        when the ticket holds a slot, and passes any cached ``analyzed``
        plan plus an ``admission`` dict (queued?, simulated queue wait,
        session) that lands on the query span's attributes for EXPLAIN
        ANALYZE.
        """
        effective = config or self.config
        label = label or _query_label(query)
        try:
            # Fresh memory slate per query: charges from the previous call
            # are dead weight (touch re-creates anything still live, e.g.
            # an incremental view's cached state on its next insert), and
            # any budget a pressure injector shrank comes back up.
            self.cluster.memory.release_all()
            self.cluster.memory.reset_budget()
            if effective.deadline_seconds is not None:
                self.cluster.deadline = (self.cluster.metrics.sim_time
                                         + effective.deadline_seconds)
            if profile_path is None:
                return self._run_sql(query, effective, label,
                                     analyzed=analyzed, admission=admission,
                                     query_id=query_id,
                                     resume_state=resume_state)
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                return self._run_sql(query, effective, label,
                                     analyzed=analyzed, admission=admission,
                                     query_id=query_id,
                                     resume_state=resume_state)
            finally:
                profiler.disable()
                profiler.dump_stats(profile_path)
                # _run_sql set last_run even on a deadline abort.
                self.last_run.profile_path = profile_path
        finally:
            self.cluster.deadline = None

    def _run_sql(self, query: str, effective: ExecutionConfig,
                 label: str, analyzed=None,
                 admission: dict | None = None,
                 query_id: str | None = None,
                 resume_state: dict | None = None) -> Relation:
        if analyzed is None:
            analyzed = self.analyze_query(query, effective)

        store = qid = None
        if effective.checkpointing:
            store = CheckpointStore(effective.checkpoint_dir)
            qid = query_id or make_query_id(query)
            if resume_state is None:
                # A resume keeps the existing manifest (and its in-flight
                # pointer) alive until the next checkpoint supersedes it.
                store.begin(qid, sql=query, config=effective,
                            fingerprint=catalog_fingerprint(self.catalog))

        materialized: dict[str, Relation] = {}

        def resolve(name: str) -> Relation:
            key = name.lower()
            if key in materialized:
                return materialized[key]
            return self.catalog.get(name)

        run = RunInfo()
        run.query_id = qid
        events_before = len(self.cluster.metrics.events())
        tracer = self.cluster.tracer
        query_span = None
        try:
            with tracer.span("query", label) as query_span:
                if admission is not None:
                    query_span.annotate(admission=dict(admission))
                for unit_index, unit in enumerate(analyzed.units):
                    if isinstance(unit, DerivedViewPlan):
                        rows: list[tuple] = []
                        seen: set[tuple] = set()
                        for branch in unit.branches:
                            branch_result = execute_select(
                                branch, resolve, unit.name, tracer=tracer)
                            for row in branch_result.rows:
                                if row not in seen:
                                    seen.add(row)
                                    rows.append(row)
                        materialized[unit.name.lower()] = Relation(
                            unit.name, unit.columns, rows)
                    else:
                        assert isinstance(unit, CliquePlan)
                        # Size gate *before* planning: the kernel layer's
                        # costs start at plan time (extra codegen
                        # variants), so a clique too small to amortize
                        # them plans and runs entirely on the reference
                        # paths.  The operator repeats this check for
                        # callers that plan directly.
                        clique_config = effective
                        if (effective.kernels
                                and effective.kernel_min_rows > 0
                                and _clique_input_rows(unit, resolve)
                                < effective.kernel_min_rows):
                            clique_config = _gated_config(effective)
                            self.cluster.metrics.inc(
                                "kernel_small_input_gate")
                        checkpointer = None
                        if store is not None:
                            # Decomposed plans run their own nested loop
                            # without a global iteration barrier, so there
                            # is no consistent cut to persist; durability
                            # forces the stacked plan.
                            clique_config = clique_config.but(
                                decomposed_plans=False)
                            checkpointer = CliqueCheckpointer(
                                store, qid, unit_index,
                                effective.checkpoint_interval,
                                self.cluster.metrics,
                                self.cluster.cost_model)
                        planned = plan_clique(unit, clique_config)
                        operator = FixpointOperator(planned, self.cluster,
                                                    clique_config, resolve,
                                                    checkpointer=checkpointer)
                        if (resume_state is not None
                                and resume_state["unit"] == unit_index):
                            payload = resume_state["payload"]
                            result = operator.execute(resume=payload)
                            run.resumed_from = payload["iteration"]
                        else:
                            result = operator.execute()
                        for view_name, relation in result.relations.items():
                            materialized[view_name.lower()] = relation
                        clique_key = ",".join(unit.view_names)
                        run.clique_iterations[clique_key] = result.iterations
                        run.delta_history[clique_key] = result.delta_history
                        run.iterations += result.iterations

                final = execute_select(analyzed.final, resolve, "result",
                                       tracer=tracer)
                query_span.annotate(iterations=run.iterations,
                                    result_rows=len(final.rows))
                if store is not None:
                    store.mark_complete(qid)
        except (QueryDeadlineExceededError, PoisonTaskError) as exc:
            # The span closed (its ``finally`` ran), so the partial trace
            # is complete up to the aborting stage (deadline) or the
            # quarantining batch (poison pill).
            self._record_run(run, events_before, query_span, tracer)
            exc.partial_trace = run.trace
            raise
        self._record_run(run, events_before, query_span, tracer)
        return final

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------

    def _load_resumable(self, query_id: str, checkpoint_dir: str | None,
                        config: ExecutionConfig | None):
        """Shared loader behind :meth:`resume` / :meth:`resume_admitted`.

        Returns ``(query_sql, effective_config, resume_state)`` where
        ``resume_state`` is ``None`` when the query crashed before its
        first checkpoint (resume = run from scratch).
        """
        directory = (checkpoint_dir
                     or (config.checkpoint_dir if config else None)
                     or self.config.checkpoint_dir)
        if directory is None:
            raise CheckpointNotFoundError(
                "no checkpoint directory: pass checkpoint_dir= or set "
                "ExecutionConfig.checkpoint_dir")
        store = CheckpointStore(directory)
        manifest = store.load_manifest(query_id)
        if manifest.get("status") != "in-progress":
            raise CheckpointNotFoundError(
                f"query {query_id!r} has no in-progress checkpoint "
                f"(status: {manifest.get('status')!r}); nothing to resume")
        if config is not None:
            effective = config
        else:
            effective = ExecutionConfig(**manifest["config"])
        # The resumed run must checkpoint into the directory we read
        # from, whatever the override says about other knobs.
        effective = effective.but(
            checkpoint_dir=directory,
            checkpoint_interval=(effective.checkpoint_interval
                                 or manifest["config"]["checkpoint_interval"]))
        fingerprint = catalog_fingerprint(self.catalog)
        if fingerprint != manifest["catalog_fingerprint"]:
            raise CheckpointError(
                f"catalog contents changed since the checkpoint for "
                f"{query_id!r} was cut (fingerprint {fingerprint!r} != "
                f"{manifest['catalog_fingerprint']!r}); a resumed fixpoint "
                f"would mix epochs — re-run the query instead")
        resume_state = store.load_resume_state(manifest)
        return manifest["sql"], effective, resume_state

    def resume(self, query_id: str, checkpoint_dir: str | None = None,
               config: ExecutionConfig | None = None) -> Relation:
        """Continue a crashed or deadline-killed checkpointed query.

        ``query_id`` is :attr:`RunInfo.query_id` (printed by the CLI, or
        :func:`repro.core.checkpoint.make_query_id` of the statement).
        The manifest's own config is replayed unless ``config`` overrides
        it — pass a larger ``deadline_seconds`` to give a deadline-killed
        query a fresh window.  Raises
        :class:`repro.errors.CheckpointNotFoundError` when there is
        nothing in-progress under that id, and
        :class:`repro.errors.CheckpointError` when the catalog no longer
        matches the data the checkpoint was cut over.
        """
        query, effective, resume_state = self._load_resumable(
            query_id, checkpoint_dir, config)
        label = _query_label(query)
        ticket = self.governor.admit(label, self._estimate_query_bytes(query))
        admission = {"queued": ticket.queued, "wait_s": ticket.wait_s,
                     "reserved_bytes": ticket.reserved_bytes}
        try:
            return self.execute_admitted(query, effective, label=label,
                                         admission=admission,
                                         query_id=query_id,
                                         resume_state=resume_state)
        finally:
            self.governor.release(ticket)

    def resume_admitted(self, query_id: str,
                        config: ExecutionConfig | None = None, *,
                        label: str | None = None,
                        admission: dict | None = None,
                        checkpoint_dir: str | None = None) -> Relation:
        """Resume under a governor ticket the caller already holds.

        The serving layer's WAL replay re-admits in-flight queries
        itself (its governor tickets outlive a single execute call), so
        it needs the :meth:`resume` body without the admit/release
        bracket.
        """
        query, effective, resume_state = self._load_resumable(
            query_id, checkpoint_dir, config)
        return self.execute_admitted(query, effective,
                                     label=label or _query_label(query),
                                     admission=admission,
                                     query_id=query_id,
                                     resume_state=resume_state)

    def _record_run(self, run: RunInfo, events_before: int,
                    query_span, tracer) -> None:
        run.sim_time = self.cluster.metrics.sim_time
        run.metrics = self.cluster.metrics.snapshot()
        for event in self.cluster.metrics.events()[events_before:]:
            run.time_breakdown[event.label] = (
                run.time_breakdown.get(event.label, 0.0) + event.seconds)
        if tracer.enabled and query_span is not None:
            run.trace = query_span.to_dict()
        self.last_run = run

    def explain_analyze(self, query: str,
                        config: ExecutionConfig | None = None) -> str:
        """Execute a query and render its per-iteration trace timeline.

        The report's iteration counts, per-view delta sizes, and total
        simulated time come from the same span tree exposed on
        :attr:`RunInfo.trace`, so they match ``FixpointResult`` and the
        :class:`MetricsRegistry` exactly.
        """
        self.sql(query, config=config)
        return self.last_run.explain_analyze()

    def explain(self, query: str, config: ExecutionConfig | None = None) -> str:
        """Render the analyzed/optimized plan, including fixpoint physical
        plans, in the style of Figure 2."""
        effective = config or self.config
        analyzed = optimize(analyze(parse(query), self.catalog),
                            magic_filters=effective.magic_filters)
        lines = []
        for unit in analyzed.units:
            lines.append(unit.explain())
            if isinstance(unit, CliquePlan):
                planned = plan_clique(unit, effective)
                lines.append(planned.explain())
        lines.append(f"Final: {analyzed.final.to_sql()}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    @property
    def metrics(self):
        return self.cluster.metrics

    def reset_metrics(self) -> None:
        self.cluster.metrics.reset()
