"""The fixpoint operator: distributed semi-naive evaluation (Section 6).

One operator evaluates one recursive clique on the simulated cluster.  The
default mode is the optimized DSN of Algorithm 6: each iteration is a single
ShuffleMap stage whose task *p* merges the incoming delta partition into the
cached all-relation state (SetRDD / keyed aggregate state), derives the
fresh delta ``D``, joins ``D`` against the cached base partition (or
broadcast tables), partially aggregates, and emits shuffle buckets keyed by
each view's partition key.  Disabling stage combination splits this back
into the separate Reduce and Map stages of Algorithm 4/5.

Also implemented here:

- **naive evaluation** (Algorithms 1–2): every iteration re-derives from
  the full relation; restricted to set/min/max cliques (re-deriving *sums*
  from totals would double-count, which is exactly why semi-naive deltas
  carry increments).
- **stratified evaluation** (Figure 1): planner strips head aggregates, the
  recursion runs under set semantics, and this module applies the
  aggregates afterwards.  On cyclic data the recursion may enumerate
  unboundedly many facts — the iteration budget then raises
  :class:`FixpointNotReachedError`, matching the paper's footnote that
  stratified SSSP "will not terminate due to loops in the graph".
- **decomposed execution** (Section 7.2): for decomposable plans each
  partition runs its own local fixpoint against broadcast bases with no
  shuffle and no synchronization.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable

from repro.core.config import ExecutionConfig
from repro.core.physical import (
    CompiledTerm,
    HashJoinStep,
    PhysicalView,
    SortMergeJoinStep,
    TermRuntime,
    make_slots_key,
    pad_row,
)
from repro.core.planner import PlannedClique
from repro.engine.cluster import Cluster, StageTask
from repro.engine.dataset import Dataset, Partition
from repro.engine.joins import build_hash_table, sort_rows
from repro.engine.partitioner import HashPartitioner, make_key_fn
from repro.engine.setrdd import KeyedStateRDD, SetRDD
from repro.errors import FixpointNotReachedError, PlanningError
from repro.relation import Relation


@dataclass
class FixpointResult:
    """Output of one clique evaluation."""

    relations: dict[str, Relation]
    iterations: int
    delta_history: list[int] = field(default_factory=list)


def _make_splitter(view: PhysicalView) -> Callable[[tuple], tuple[object, tuple]]:
    """head row -> (group key, aggregate values) for keyed-state merging."""
    group = view.group_positions
    aggs = view.aggregate_positions
    if len(group) == 1:
        g = group[0]
        return lambda row: (row[g], tuple(row[a] for a in aggs))
    return lambda row: (tuple(row[i] for i in group),
                        tuple(row[a] for a in aggs))


def _make_assembler(view: PhysicalView) -> Callable[[object, tuple], tuple]:
    """(group key, aggregate values) -> head row."""
    group = view.group_positions
    aggs = view.aggregate_positions
    arity = len(group) + len(aggs)
    single = len(group) == 1

    def assemble(key, values):
        row = [None] * arity
        key_values = (key,) if single else key
        for position, value in zip(group, key_values):
            row[position] = value
        for position, value in zip(aggs, values):
            row[position] = value
        return tuple(row)

    return assemble


def _make_negator(view: PhysicalView) -> Callable[[tuple], tuple]:
    """Flip the sign of accumulating aggregate values (δ⋈δ correction)."""
    aggs = view.aggregate_positions
    functions = view.aggregate_functions
    flip = [p for p, fn in zip(aggs, functions) if fn.name in ("sum", "count")]

    def negate(row: tuple) -> tuple:
        out = list(row)
        for position in flip:
            out[position] = -out[position]
        return tuple(out)

    return negate


class FixpointOperator:
    """Evaluates one planned clique to its fixpoint on a cluster."""

    def __init__(self, planned: PlannedClique, cluster: Cluster,
                 config: ExecutionConfig,
                 resolve: Callable[[str], Relation]):
        self.planned = planned
        self.cluster = cluster
        self.config = config
        self._resolve_raw = resolve
        self._resolved: dict[str, Relation] = {}
        self.n = cluster.num_partitions
        self.partitioner = HashPartitioner(self.n)
        self.runtime = TermRuntime()
        self.states: dict[str, KeyedStateRDD | SetRDD] = {}
        self.splitters: dict[str, Callable] = {}
        self.assemblers: dict[str, Callable] = {}
        self.negators: dict[str, Callable] = {}
        self.key_fns: dict[str, Callable] = {}
        #: Current-iteration fresh deltas, per view, per partition.
        self._current_d: dict[str, list[list[tuple]]] = {}
        self._two_col: dict[str, bool] = {}
        self._base_partition_objects: dict[int, list[Partition]] = {}
        #: Memory-charge groups of this clique's broadcast variables.
        self._broadcast_groups: list[str] = []
        self._validate()

    def resolve(self, name: str) -> Relation:
        """Resolve a base input under set semantics.

        Recursion evaluates over *facts*: a base row appearing twice is
        one fact, and feeding the duplicate through a join would derive a
        duplicate contribution that inflates ``sum``/``count`` heads.
        Plain (non-recursive) SQL keeps its bag semantics — only inputs
        to the fixpoint are deduplicated, order-preserving.
        """
        relation = self._resolved.get(name)
        if relation is None:
            relation = self._resolve_raw(name)
            distinct = list(dict.fromkeys(relation.rows))
            if len(distinct) != len(relation.rows):
                relation = Relation(relation.name, relation.columns, distinct)
            self._resolved[name] = relation
        return relation

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        if self.config.evaluation == "naive":
            for view in self.planned.views.values():
                if any(a is not None and a.name in ("sum", "count")
                       for a in view.aggregates):
                    raise PlanningError(
                        "naive evaluation re-derives from totals and would "
                        "double-count sum/count aggregates; use DSN")

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _setup_states(self) -> None:
        for name, view in self.planned.views.items():
            if view.has_aggregates:
                self.states[name] = KeyedStateRDD(
                    self.n, view.aggregate_functions, self.partitioner)
            else:
                self.states[name] = SetRDD(self.n, self.partitioner)
            self.splitters[name] = _make_splitter(view)
            self.assemblers[name] = _make_assembler(view)
            self.negators[name] = _make_negator(view)
            self.key_fns[name] = make_key_fn(view.partition_key_positions)
            self._current_d[name] = [[] for _ in range(self.n)]
            # Hot-path flag: the ubiquitous (key, value) head shape, where
            # rows and (key, values) pairs coincide up to 1-tuple wrapping.
            self._two_col[name] = (view.group_positions == (0,)
                                   and view.aggregate_positions == (1,))

        def state_rows(view_name: str, partition: int) -> list[tuple]:
            state = self.states[view_name]
            if partition == -1:
                if isinstance(state, SetRDD):
                    return state.collect()
                return state.collect_rows()
            if isinstance(state, SetRDD):
                return list(state.partitions[partition])
            return state.partition_rows(partition)

        def delta_rows(view_name: str, partition: int) -> list[tuple]:
            if partition == -1:
                out: list[tuple] = []
                for rows in self._current_d[view_name]:
                    out.extend(rows)
                return out
            return self._current_d[view_name][partition]

        def state_total(view_name: str, partition: int, key) -> tuple | None:
            state = self.states[view_name]
            return state.partitions[partition].get(key)

        self.runtime.state_rows = state_rows
        self.runtime.delta_rows = delta_rows
        self.runtime.state_total = state_total

    def _setup_base_relations(self) -> None:
        """Broadcast / co-partition every base input and build join sides."""
        config = self.config
        cluster = self.cluster

        # One broadcast per distinct (relation, filter) pair, regardless of
        # how many steps consume it.
        broadcast_charged: set[tuple[str, str]] = set()
        build_cpu = 0.0

        for plan in self.planned.base_plans:
            relation = self.resolve(plan.relation)
            t0 = time.perf_counter()
            padded = [pad_row(row, plan.offset, plan.arity)
                      for row in relation.rows]
            if plan.filter is not None:
                predicate = plan.filter
                padded = [row for row in padded if predicate(row)]

            if plan.mode == "broadcast":
                charge_key = (plan.relation.lower(), plan.filter_sql)
                if charge_key not in broadcast_charged:
                    broadcast_charged.add(charge_key)
                    raw = [row for row in relation.rows]
                    broadcast = cluster.broadcast(
                        raw,
                        compress=config.broadcast_compression,
                        ship_hash_table=not config.broadcast_compression)
                    if broadcast.memory_group:
                        self._broadcast_groups.append(broadcast.memory_group)
                if plan.equi:
                    table = build_hash_table(padded,
                                             make_slots_key(plan.build_slots))
                    self.runtime.broadcast_tables[plan.step_id] = table
                else:
                    self.runtime.broadcast_tables[plan.step_id] = padded
            else:  # copartition
                key_fn = make_slots_key(plan.build_slots)
                buckets: list[list[tuple]] = [[] for _ in range(self.n)]
                for row in padded:
                    buckets[self.partitioner.partition_of(key_fn(row))].append(row)
                partitions = [
                    Partition(i, bucket, cluster.worker_for_partition(i))
                    for i, bucket in enumerate(buckets)
                ]
                self._base_partition_objects[plan.step_id] = partitions
                # Cached co-partitioned base blocks live on workers for
                # the whole fixpoint; charge them like Spark storage.
                for partition in partitions:
                    if partition.rows:
                        cluster.memory.charge(
                            "base", str(plan.step_id), partition.index,
                            partition.worker, partition.size_bytes())
                if config.join_strategy == "sort_merge":
                    built = [sort_rows(bucket, key_fn) for bucket in buckets]
                else:
                    built = [build_hash_table(bucket, key_fn)
                             for bucket in buckets]
                self.runtime.base_partitions[plan.step_id] = built
            build_cpu += time.perf_counter() - t0

        # The builds above happen on workers in parallel; charge them as
        # one setup stage.
        if self.planned.base_plans:
            cluster.metrics.advance(
                cluster.cost_model.stage_overhead_s
                + build_cpu * cluster.cost_model.cpu_scale / cluster.num_workers,
                label="fixpoint-setup")
            cluster.metrics.inc("stages")

    # ------------------------------------------------------------------
    # base case
    # ------------------------------------------------------------------

    #: Synthetic shuffle-source id for constant base rows, which are
    #: emitted by the driver rather than by any ``fixpoint-base`` task.
    _DRIVER_SOURCE = -1

    def _evaluate_base_rules(self) -> dict[str, Dataset]:
        """Run every base rule once and shuffle results into initial deltas.

        Each ``fixpoint-base`` task is its own shuffle source, attributed
        to the worker that actually ran it, so the initial exchange
        charges ``shuffle_remote_bytes`` per producing worker instead of
        pretending every base delta originated on worker 0.
        """
        outputs: dict[str, dict[int, list[tuple]]] = defaultdict(
            lambda: defaultdict(list))
        source_workers: dict[int, int] = {}
        tasks: list[StageTask] = []
        chunk_views: list[str] = []

        for base_rule in self.planned.base_rules:
            if base_rule.term is None:
                outputs[base_rule.view][self._DRIVER_SOURCE].extend(
                    base_rule.constant_rows)
                source_workers[self._DRIVER_SOURCE] = 0
                continue
            relation = self.resolve(base_rule.driving_relation)
            rows = relation.rows
            chunk = max(1, -(-len(rows) // self.n))
            term = base_rule.term
            for i in range(self.n):
                piece = rows[i * chunk:(i + 1) * chunk]
                if not piece:
                    continue
                tasks.append(StageTask(
                    len(tasks),
                    [Partition(len(tasks), piece,
                               self.cluster.worker_for_partition(i))],
                    (lambda p, t=term: t.evaluate(p, 0, self.runtime)),
                    preferred_worker=self.cluster.worker_for_partition(i)))
                chunk_views.append(base_rule.view)

        if tasks:
            results = self.cluster.run_stage("fixpoint-base", tasks)
            for result, view in zip(results, chunk_views):
                outputs[view][result.index].extend(result.output)
                source_workers[result.index] = result.worker

        return self._exchange_outputs(outputs, source_workers)

    # ------------------------------------------------------------------
    # shuffles
    # ------------------------------------------------------------------

    def _exchange_outputs(self, per_view_buckets: dict[str, dict[int, list[tuple]]],
                          source_workers: dict[int, int] | None = None
                          ) -> dict[str, Dataset]:
        """Bucket rows by each view's partition key and exchange them.

        ``per_view_buckets`` maps view -> {source id -> rows}; rows are
        re-bucketed by target partition here.
        """
        incoming: dict[str, Dataset] = {}
        for name, view in self.planned.views.items():
            key_fn = self.key_fns[name]
            map_outputs = []
            for source, rows in per_view_buckets.get(name, {}).items():
                buckets: dict[int, list[tuple]] = defaultdict(list)
                for row in rows:
                    pid = self.partitioner.partition_of(key_fn(row))
                    buckets[pid].append(row)
                worker = (source_workers or {}).get(source, source % self.cluster.num_workers)
                map_outputs.append((worker, buckets))
            incoming[name] = self.cluster.exchange(
                map_outputs, self.n, self.partitioner,
                view.partition_key_positions)
        return incoming

    # ------------------------------------------------------------------
    # merge (the Reduce side)
    # ------------------------------------------------------------------

    def _charge_immutable_union(self) -> None:
        """The SetRDD ablation's per-iteration cost (Section 6.1).

        Without the mutable all-relation, each iteration materializes a
        new immutable RDD via ``union().distinct()`` — which repartitions
        the *entire* all-relation, not just the delta ("most of its data
        redundantly copied", as the paper puts it).  Charge that shuffle.
        """
        nbytes = sum(state.size_bytes() for state in self.states.values())
        remote = nbytes * (self.cluster.num_workers - 1) / max(
            1, self.cluster.num_workers)
        self.cluster.metrics.advance(
            self.cluster.cost_model.transfer_seconds(
                int(remote), self.cluster.num_workers),
            label="immutable-union")
        self.cluster.metrics.inc("immutable_union_bytes", nbytes)

    def _merge_into_state(self, view_name: str, partition: int,
                          rows: list[tuple]) -> list[tuple]:
        """Union/aggregate incoming rows into the state; return fresh delta.

        The cached state partition is the merge's working set: it is
        touched first (reading it back from the spill tier if the memory
        governor evicted it) and re-charged at its post-merge size, so
        per-worker accounting tracks the all-relation as it grows.
        """
        memory = self.cluster.memory
        memory.touch("state", view_name, partition)
        state = self.states[view_name]
        if not self.config.use_setrdd:
            # Immutable-RDD ablation: every union copies the partition.
            state.partitions[partition] = (
                set(state.partitions[partition])
                if isinstance(state, SetRDD)
                else dict(state.partitions[partition]))
        if isinstance(state, SetRDD):
            fresh = state.union_in_place(partition, rows)
        elif self._two_col[view_name]:
            delta_pairs = state.merge(
                partition, [(row[0], row[1:]) for row in rows])
            fresh = [(key, values[0]) for key, values in delta_pairs]
        else:
            splitter = self.splitters[view_name]
            assembler = self.assemblers[view_name]
            delta_pairs = state.merge(partition, [splitter(r) for r in rows])
            fresh = [assembler(key, values) for key, values in delta_pairs]
        memory.charge("state", view_name, partition,
                      self.cluster.worker_for_partition(partition),
                      state.partition_size_bytes(partition))
        return fresh

    # ------------------------------------------------------------------
    # map (the join side)
    # ------------------------------------------------------------------

    def _evaluate_terms(self, partition: int,
                        naive: bool) -> dict[str, dict[int, list[tuple]]]:
        """Run every term over one partition's delta; bucket the outputs."""
        from repro.engine.aggregates import partial_aggregate

        # The joins read the cached base blocks and broadcast copies:
        # touch them so LRU eviction prefers colder segments, and so a
        # spilled block is read back (and charged) before use.
        memory = self.cluster.memory
        home = self.cluster.worker_for_partition(partition)
        for step_id in self._base_partition_objects:
            memory.touch("base", str(step_id), partition)
        for group in self._broadcast_groups:
            memory.touch("broadcast", group, home)

        per_view: dict[str, dict[int, list[tuple]]] = {}
        collected: dict[str, list[tuple]] = defaultdict(list)
        for term in self.planned.terms:
            if naive:
                delta = self.runtime.state_rows(term.delta_view, partition)
            else:
                delta = self._current_d[term.delta_view][partition]
            if not delta:
                continue
            rows = term.evaluate(delta, partition, self.runtime)
            if term.negate and rows:
                negate = self.negators[term.view]
                rows = [negate(r) for r in rows]
            collected[term.view].extend(rows)

        for view_name, rows in collected.items():
            view = self.planned.views[view_name]
            if view.has_aggregates and self.config.partial_aggregation:
                functions = view.aggregate_functions
                if self._two_col[view_name]:
                    # Fused split+combine+assemble for (key, value) heads.
                    combine = functions[0].combine
                    combined: dict = {}
                    get = combined.get
                    for key, value in rows:
                        old = get(key)
                        combined[key] = (value if old is None
                                         else combine(old, value))
                    rows = list(combined.items())
                else:
                    splitter = self.splitters[view_name]
                    assembler = self.assemblers[view_name]
                    pairs = partial_aggregate(
                        [splitter(r) for r in rows], functions)
                    rows = [assembler(k, v) for k, v in pairs]
            buckets: dict[int, list[tuple]] = defaultdict(list)
            key_fn = self.key_fns[view_name]
            partition_of = self.partitioner.partition_of
            for row in rows:
                buckets[partition_of(key_fn(row))].append(row)
            per_view[view_name] = buckets
        return per_view

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def execute(self) -> FixpointResult:
        tracer = self.cluster.tracer
        with tracer.span("fixpoint", ",".join(self.planned.views)) as span:
            self._setup_states()
            self._setup_base_relations()
            incoming = self._evaluate_base_rules()

            if self.planned.decomposable and self.config.evaluation == "dsn":
                iterations = self._execute_decomposed(incoming)
                span.annotate(iterations=iterations, mode="decomposed")
                return self._finish(iterations, [])

            iterations, delta_history = self._run_to_fixpoint(incoming)
            span.annotate(iterations=iterations,
                          mode=self.config.evaluation,
                          delta_history=list(delta_history))
            return self._finish(iterations, delta_history)

    def _run_to_fixpoint(self, incoming: dict[str, Dataset]
                         ) -> tuple[int, list[int]]:
        """Iterate until quiescence; shared by one-shot and incremental
        execution (see :mod:`repro.core.streaming`)."""
        naive = self.config.evaluation == "naive"
        combine = self.config.stage_combination
        iterations = 0
        delta_history: list[int] = []

        # Termination keys off the *post-merge* delta D: under semi-naive
        # evaluation D empty coincides with empty incoming shuffles, but
        # under naive evaluation every round re-derives (and re-ships) the
        # full relation, so only the merge can detect the fixpoint.
        tracer = self.cluster.tracer
        memory = self.cluster.memory
        while True:
            iterations += 1
            if iterations > self.config.max_iterations:
                last_delta = delta_history[-1] if delta_history else 0
                raise FixpointNotReachedError(
                    f"fixpoint not reached within "
                    f"{self.config.max_iterations} iterations: the last "
                    f"completed iteration ({iterations - 1}) still "
                    f"produced a delta of {last_delta} rows",
                    iterations - 1, partial_result=self._relations())

            memory.begin_iteration()
            with tracer.span("iteration", f"iteration-{iterations}",
                             index=iterations) as span:
                if combine:
                    incoming, d_total = self._iterate_combined(incoming, naive)
                else:
                    incoming, d_total = self._iterate_two_stage(incoming, naive)
                if not self.config.use_setrdd:
                    self._charge_immutable_union()
                self.cluster.metrics.inc("iterations")
                iter_hwm = memory.iteration_high_water()
                span.annotate(
                    delta_total=d_total,
                    delta_by_view={
                        name: sum(len(rows) for rows in partitions)
                        for name, partitions in self._current_d.items()},
                    memory_peak_bytes=max(iter_hwm.values(), default=0),
                    memory_hwm_by_worker={f"w{w}": nbytes
                                          for w, nbytes in iter_hwm.items()})
            if d_total == 0:
                break
            delta_history.append(d_total)

        return iterations, delta_history

    def _release_consumed_shuffles(self, incoming: dict[str, Dataset]) -> None:
        """Free shuffle buffers once a merge stage has absorbed them.

        The incoming deltas were charged to worker memory by
        ``Cluster.exchange``; after the Reduce (or combined ShuffleMap)
        stage their rows live inside the cached all-relation state, so the
        shuffle-tier copies are released — exactly when Spark drops
        consumed shuffle blocks.
        """
        for dataset in incoming.values():
            if dataset.memory_group:
                self.cluster.memory.release_group("shuffle",
                                                  dataset.memory_group)

    def _state_snapshot_hooks(self, partition: int):
        """Snapshot/restore for tasks that mutate the cached state.

        Only consulted under failure injection; replaying a failed merge
        from the snapshot is the simulator's version of recomputing from
        the cached checkpoint (Section 6.1).
        """
        states = self.states

        def snapshot():
            return {name: state.snapshot_partition(partition)
                    for name, state in states.items()}

        def restore(saved):
            for name, data in saved.items():
                states[name].restore_partition(partition, data)

        return snapshot, restore

    def _stage_inputs(self, incoming: dict[str, Dataset],
                      partition: int) -> list[Partition]:
        """Task inputs for locality accounting: delta + cached base blocks."""
        inputs = [incoming[name].partitions[partition]
                  for name in self.planned.views]
        for partitions in self._base_partition_objects.values():
            inputs.append(partitions[partition])
        return inputs

    def _iterate_combined(self, incoming: dict[str, Dataset],
                          naive: bool) -> tuple[dict[str, Dataset], int]:
        """Algorithm 6: one ShuffleMap stage per iteration.

        Returns the next iteration's incoming shuffled datasets together
        with the total post-merge delta size ``|D|`` across views and
        partitions, which is what the fixpoint loop keys termination off.
        """
        view_names = list(self.planned.views)

        def task_fn(partition):
            def run(*_input_rows):
                d_count = 0
                for name in view_names:
                    rows = incoming[name].partitions[partition].rows
                    fresh = self._merge_into_state(name, partition, rows)
                    self._current_d[name][partition] = fresh
                    d_count += len(fresh)
                if d_count == 0 and not naive:
                    return 0, {}
                buckets = self._evaluate_terms(partition, naive)
                return d_count, buckets
            return run

        tasks = []
        for p in range(self.n):
            snapshot, restore = self._state_snapshot_hooks(p)
            tasks.append(StageTask(
                p, self._stage_inputs(incoming, p), task_fn(p),
                preferred_worker=self.cluster.worker_for_partition(p),
                snapshot=snapshot, restore=restore, mutating=True))
        results = self.cluster.run_stage("fixpoint-shufflemap", tasks)
        self._release_consumed_shuffles(incoming)

        merged: dict[str, dict[int, list[tuple]]] = defaultdict(dict)
        workers: dict[int, int] = {}
        d_total = 0
        for result in results:
            workers[result.index] = result.worker
            d_count, per_view = result.output
            d_total += d_count
            for view_name, buckets in per_view.items():
                rows: list[tuple] = []
                for bucket_rows in buckets.values():
                    rows.extend(bucket_rows)
                merged[view_name][result.index] = rows
        return self._exchange_outputs(merged, source_workers=workers), d_total

    def _iterate_two_stage(self, incoming: dict[str, Dataset],
                           naive: bool) -> tuple[dict[str, Dataset], int]:
        """Algorithm 4/5: separate Reduce and Map stages per iteration."""
        view_names = list(self.planned.views)

        # Stage 1: Reduce — merge incoming deltas into state, emit D.
        def reduce_fn(partition):
            def run(*_input_rows):
                output = {}
                for name in view_names:
                    rows = incoming[name].partitions[partition].rows
                    output[name] = self._merge_into_state(name, partition, rows)
                return output
            return run

        reduce_tasks = []
        for p in range(self.n):
            snapshot, restore = self._state_snapshot_hooks(p)
            reduce_tasks.append(StageTask(
                p, [incoming[name].partitions[p] for name in view_names],
                reduce_fn(p),
                preferred_worker=self.cluster.worker_for_partition(p),
                snapshot=snapshot, restore=restore, mutating=True))
        reduce_results = self.cluster.run_stage("fixpoint-reduce", reduce_tasks)
        self._release_consumed_shuffles(incoming)

        d_partitions: dict[str, list[Partition]] = {name: [] for name in view_names}
        d_total = 0
        for result in reduce_results:
            for name in view_names:
                rows = result.output[name]
                d_total += len(rows)
                self._current_d[name][result.index] = rows
                d_partitions[name].append(
                    Partition(result.index, rows, result.worker))

        # Stage 2: Map — join D with bases/state, emit shuffle buckets.
        def map_fn(partition):
            def run(*_input_rows):
                return self._evaluate_terms(partition, naive)
            return run

        map_tasks = []
        for p in range(self.n):
            inputs = [d_partitions[name][p] for name in view_names]
            for partitions in self._base_partition_objects.values():
                inputs.append(partitions[p])
            map_tasks.append(StageTask(
                p, inputs, map_fn(p),
                preferred_worker=self.cluster.worker_for_partition(p)))
        map_results = self.cluster.run_stage("fixpoint-map", map_tasks)

        merged: dict[str, dict[int, list[tuple]]] = defaultdict(dict)
        workers: dict[int, int] = {}
        for result in map_results:
            workers[result.index] = result.worker
            for view_name, buckets in result.output.items():
                rows: list[tuple] = []
                for bucket_rows in buckets.values():
                    rows.extend(bucket_rows)
                merged[view_name][result.index] = rows
        return self._exchange_outputs(merged, source_workers=workers), d_total

    # ------------------------------------------------------------------
    # decomposed execution (Section 7.2)
    # ------------------------------------------------------------------

    def _execute_decomposed(self, incoming: dict[str, Dataset]) -> int:
        """Independent per-partition fixpoints; no shuffle, no sync."""
        (view_name, view), = self.planned.views.items()
        terms = self.planned.terms
        splitter = self.splitters[view_name]
        assembler = self.assemblers[view_name]
        global_state = self.states[view_name]
        max_iters = self.config.max_iterations

        def local_fixpoint(partition):
            def run(delta_rows):
                local_runtime = TermRuntime()
                local_runtime.broadcast_tables = self.runtime.broadcast_tables
                if isinstance(global_state, SetRDD):
                    local = SetRDD(1)
                else:
                    local = KeyedStateRDD(1, view.aggregate_functions)
                local_runtime.state_rows = (
                    lambda _v, _p: (list(local.partitions[0])
                                    if isinstance(local, SetRDD)
                                    else local.partition_rows(0)))
                local_runtime.state_total = (
                    lambda _v, _p, key: local.partitions[0].get(key))

                delta = list(delta_rows)
                iterations = 0
                while delta:
                    iterations += 1
                    if iterations > max_iters:
                        raise FixpointNotReachedError(
                            "decomposed local fixpoint exceeded budget",
                            iterations - 1)
                    if isinstance(local, SetRDD):
                        fresh = local.union_in_place(0, delta)
                    else:
                        pairs = local.merge(0, [splitter(r) for r in delta])
                        fresh = [assembler(k, v) for k, v in pairs]
                    delta = []
                    for term in terms:
                        if fresh:
                            delta.extend(term.evaluate(fresh, 0, local_runtime))
                return local.partitions[0], iterations
            return run

        tasks = [
            StageTask(p, [incoming[view_name].partitions[p]],
                      local_fixpoint(p),
                      preferred_worker=self.cluster.worker_for_partition(p))
            for p in range(self.n)
        ]
        results = self.cluster.run_stage("fixpoint-decomposed", tasks)
        self._release_consumed_shuffles(incoming)
        iterations = 0
        per_partition: dict[int, int] = {}
        for result in results:
            local_partition, local_iterations = result.output
            global_state.partitions[result.index] = local_partition
            per_partition[result.index] = local_iterations
            iterations = max(iterations, local_iterations)
            self.cluster.memory.charge(
                "state", view_name, result.index,
                self.cluster.worker_for_partition(result.index),
                global_state.partition_size_bytes(result.index))
        self.cluster.metrics.inc("iterations", iterations)
        span = self.cluster.tracer.current
        if span is not None:
            # Decomposed fixpoints have no global iteration barrier; record
            # each partition's local iteration count on the enclosing span.
            span.annotate(local_iterations=per_partition)
        return iterations

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def _relations(self) -> dict[str, Relation]:
        out: dict[str, Relation] = {}
        for name, view in self.planned.views.items():
            state = self.states[name]
            if isinstance(state, SetRDD):
                rows = state.collect()
            else:
                rows = state.collect_rows()
            original = view.plan
            if (self.config.evaluation == "stratified"
                    and original.has_aggregates):
                rows = self._apply_stratified_aggregates(original, rows)
            out[original.name] = Relation(original.name, original.columns, rows)
        return out

    @staticmethod
    def _apply_stratified_aggregates(view, rows: list[tuple]) -> list[tuple]:
        """The final stratum: group and aggregate after the recursion."""
        group = view.group_positions
        agg_positions = view.aggregate_positions
        functions = [view.aggregates[p] for p in agg_positions]
        grouped: dict[tuple, list] = {}
        for row in rows:
            key = tuple(row[i] for i in group)
            values = [row[p] for p in agg_positions]
            state = grouped.get(key)
            if state is None:
                grouped[key] = values
            else:
                for i, fn in enumerate(functions):
                    state[i] = fn.combine(state[i], values[i])
        out = []
        arity = len(view.columns)
        for key, values in grouped.items():
            row = [None] * arity
            for position, value in zip(group, key):
                row[position] = value
            for position, value in zip(agg_positions, values):
                row[position] = value
            out.append(tuple(row))
        return out

    def _finish(self, iterations: int,
                delta_history: list[int]) -> FixpointResult:
        return FixpointResult(self._relations(), iterations, delta_history)
