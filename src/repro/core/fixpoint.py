"""The fixpoint operator: distributed semi-naive evaluation (Section 6).

One operator evaluates one recursive clique on the simulated cluster.  The
default mode is the optimized DSN of Algorithm 6: each iteration is a single
ShuffleMap stage whose task *p* merges the incoming delta partition into the
cached all-relation state (SetRDD / keyed aggregate state), derives the
fresh delta ``D``, joins ``D`` against the cached base partition (or
broadcast tables), partially aggregates, and emits shuffle buckets keyed by
each view's partition key.  Disabling stage combination splits this back
into the separate Reduce and Map stages of Algorithm 4/5.

Also implemented here:

- **naive evaluation** (Algorithms 1–2): every iteration re-derives from
  the full relation; restricted to set/min/max cliques (re-deriving *sums*
  from totals would double-count, which is exactly why semi-naive deltas
  carry increments).
- **stratified evaluation** (Figure 1): planner strips head aggregates, the
  recursion runs under set semantics, and this module applies the
  aggregates afterwards.  On cyclic data the recursion may enumerate
  unboundedly many facts — the iteration budget then raises
  :class:`FixpointNotReachedError`, matching the paper's footnote that
  stratified SSSP "will not terminate due to loops in the graph".
- **decomposed execution** (Section 7.2): for decomposable plans each
  partition runs its own local fixpoint against broadcast bases with no
  shuffle and no synchronization.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable

from repro.core.config import ExecutionConfig
from repro.core.physical import (
    CompiledTerm,
    HashJoinStep,
    PhysicalView,
    TermRuntime,
    TotalizeStep,
    make_slots_key,
    merge_padded,
    pad_row,
)
from repro.core.planner import PlannedClique
from repro.engine.aggregates import BY_NAME as AGG_BY_NAME
from repro.engine.cluster import Cluster, StageTask
from repro.engine.columnar import MIN_BATCH_ROWS, ColumnBatch, maybe_batch
from repro.engine.partitioner import column_partition_ids
from repro.engine.dataset import Dataset, Partition
from repro.engine.joins import build_hash_table, sort_merge_join, sort_rows
from repro.engine.kernels import (
    AdaptiveJoinSelector,
    hash_probe_join,
    make_extractor,
    make_fold_kernel,
    make_padder,
    make_router,
    nested_loop_equi,
)
from repro.engine.partitioner import HashPartitioner, make_key_fn
from repro.engine.setrdd import KeyedStateRDD, SetRDD
from repro.errors import FixpointNotReachedError, PlanningError
from repro.relation import Relation


@dataclass
class FixpointResult:
    """Output of one clique evaluation."""

    relations: dict[str, Relation]
    iterations: int
    delta_history: list[int] = field(default_factory=list)


def _make_splitter(view: PhysicalView) -> Callable[[tuple], tuple[object, tuple]]:
    """head row -> (group key, aggregate values) for keyed-state merging."""
    group = view.group_positions
    aggs = view.aggregate_positions
    if len(group) == 1:
        g = group[0]
        return lambda row: (row[g], tuple(row[a] for a in aggs))
    return lambda row: (tuple(row[i] for i in group),
                        tuple(row[a] for a in aggs))


def _make_assembler(view: PhysicalView) -> Callable[[object, tuple], tuple]:
    """(group key, aggregate values) -> head row."""
    group = view.group_positions
    aggs = view.aggregate_positions
    arity = len(group) + len(aggs)
    single = len(group) == 1

    def assemble(key, values):
        row = [None] * arity
        key_values = (key,) if single else key
        for position, value in zip(group, key_values):
            row[position] = value
        for position, value in zip(aggs, values):
            row[position] = value
        return tuple(row)

    return assemble


def _make_negator(view: PhysicalView) -> Callable[[tuple], tuple]:
    """Flip the sign of accumulating aggregate values (δ⋈δ correction)."""
    aggs = view.aggregate_positions
    functions = view.aggregate_functions
    flip = [p for p, fn in zip(aggs, functions) if fn.name in ("sum", "count")]

    def negate(row: tuple) -> tuple:
        out = list(row)
        for position in flip:
            out[position] = -out[position]
        return tuple(out)

    return negate


def merge_into_state_partition(state, partition: int, rows: list[tuple],
                               two_col: bool, splitter: Callable,
                               assembler: Callable) -> list[tuple]:
    """Union/aggregate rows into one state partition; return the fresh delta.

    The driver's :meth:`FixpointOperator._merge_into_state` and the
    process-backend worker (:mod:`repro.engine.backend.worker`) both call
    this, so the merge semantics — the core of the oracle's bit-exactness
    argument — exist exactly once.
    """
    if isinstance(rows, ColumnBatch):
        # Columnar delta batch (wire format or driver-side packing): set
        # states union its row iterator, two-column keyed states merge
        # the key/value columns directly, anything else falls back to
        # materialized rows.  Same semantics, same delta, same order.
        if isinstance(state, SetRDD):
            return state.union_in_place(partition, rows.iter_rows())
        if two_col:
            return state.merge_rows_batch(partition, rows)
        rows = rows.to_rows()
    if isinstance(state, SetRDD):
        return state.union_in_place(partition, rows)
    if two_col:
        return state.merge_rows(partition, rows)
    delta_pairs = state.merge(partition, [splitter(r) for r in rows])
    return [assembler(key, values) for key, values in delta_pairs]


def run_grouped_fixpoint(grouped_specs, broadcast_tables, delta_rows,
                         max_iters: int) -> tuple[set, int]:
    """Column-decomposed set fixpoint (see ``GroupedDedupSpec``).

    Members live as ``prefix -> {last column}``; each round collects the
    adjacency sets hit by the delta, unions them per prefix and subtracts
    the already-known values — all C-level set algebra over bare column
    values.  Duplicate derivations (the bulk of a transitive closure's
    work) are collapsed before any row tuple is built or hashed.
    ``derived_any`` mirrors the reference loop's accounting: a final
    round that derives only duplicates still counts.  Shared verbatim by
    the driver's decomposed path and the process-backend worker.
    """
    pair = all(len(spec.prefix) == 1 for spec in grouped_specs)
    probes = []
    for spec in grouped_specs:
        col = spec.build_index
        adj = {k: {r[col] for r in rows}
               for k, rows in broadcast_tables[spec.step_id].items()}
        probes.append((make_extractor(spec.probe),
                       make_extractor(spec.prefix), adj.get))
    seed = set(delta_rows)
    members: dict = {}
    for row in seed:
        key = row[0] if pair else row[:-1]
        known = members.get(key)
        if known is None:
            members[key] = {row[-1]}
        else:
            known.add(row[-1])
    delta = list(seed)
    iterations = 0
    derived_any = False
    while delta:
        iterations += 1
        if iterations > max_iters:
            raise FixpointNotReachedError(
                "decomposed local fixpoint exceeded budget",
                iterations - 1)
        groups: dict = {}
        gget = groups.get
        for probe, prefix, aget in probes:
            for d in delta:
                adj_set = aget(probe(d))
                if adj_set is not None:
                    key = prefix(d)
                    group = gget(key)
                    if group is None:
                        groups[key] = [adj_set]
                    else:
                        group.append(adj_set)
        derived_any = bool(groups)
        delta = []
        extend = delta.extend
        mget = members.get
        for key, sets in groups.items():
            candidates = (sets[0] if len(sets) == 1
                          else sets[0].union(*sets[1:]))
            known = mget(key)
            if known is None:
                fresh = set(candidates)  # adj sets stay pristine
                members[key] = fresh
            else:
                fresh = candidates - known
                if not fresh:
                    continue
                known.update(fresh)
            if pair:
                extend((key, y) for y in fresh)
            else:
                extend(key + (y,) for y in fresh)
    if derived_any:
        # The reference loop runs one more (all-duplicate) round before
        # its union comes back empty.
        iterations += 1
        if iterations > max_iters:
            raise FixpointNotReachedError(
                "decomposed local fixpoint exceeded budget",
                iterations - 1)
    if pair:
        rows = {(key, y) for key, ys in members.items() for y in ys}
    else:
        rows = {key + (y,) for key, ys in members.items() for y in ys}
    return rows, iterations


def run_fused_fixpoint(dedup_fns, broadcast_tables, delta_rows,
                       max_iters: int) -> tuple[set, int]:
    """Set-view fast path: each generated term emits the round's derived
    rows (duplicates included) from one comprehension, and the union pass
    collapses to C-level set algebra.  The first occurrence of a new row
    counts as fresh and every other derived occurrence as a duplicate —
    exactly the reference loop's accounting — so ``dups`` reproduces its
    iteration count: a final round that derives only duplicates still
    counts there.  Shared verbatim by the driver's decomposed path and
    the process-backend worker.
    """
    local_runtime = TermRuntime()
    local_runtime.broadcast_tables = broadcast_tables
    members = set(delta_rows)
    delta = list(members)
    single = dedup_fns[0] if len(dedup_fns) == 1 else None
    iterations = 0
    dups = 0
    while delta:
        iterations += 1
        if iterations > max_iters:
            raise FixpointNotReachedError(
                "decomposed local fixpoint exceeded budget",
                iterations - 1)
        if single is not None:
            derived = single(delta, 0, local_runtime)
        else:
            derived = []
            for fn in dedup_fns:
                derived.extend(fn(delta, 0, local_runtime))
        fresh = set(derived)
        fresh.difference_update(members)
        dups = len(derived) - len(fresh)
        members.update(fresh)
        delta = list(fresh)
    if dups:
        # The reference loop runs one more (all-duplicate) round before
        # its union comes back empty.
        iterations += 1
        if iterations > max_iters:
            raise FixpointNotReachedError(
                "decomposed local fixpoint exceeded budget",
                iterations - 1)
    return members, iterations


def _remote_task_stub(*_inputs):
    """Placeholder ``fn`` for payload-carrying tasks: the process backend
    claims the whole batch, so this should never execute driver-side."""
    raise RuntimeError(
        "remote payload task executed driver-side; the process backend "
        "should have claimed this batch")


class FixpointOperator:
    """Evaluates one planned clique to its fixpoint on a cluster."""

    def __init__(self, planned: PlannedClique, cluster: Cluster,
                 config: ExecutionConfig,
                 resolve: Callable[[str], Relation],
                 checkpointer=None):
        self.planned = planned
        self.cluster = cluster
        self.config = config
        #: Optional :class:`repro.core.checkpoint.CliqueCheckpointer`;
        #: when set, the semi-naive loop persists its working set every
        #: ``checkpoint_interval`` completed iterations.
        self.checkpointer = checkpointer
        self._resolve_raw = resolve
        self._resolved: dict[str, Relation] = {}
        self.n = cluster.num_partitions
        self.partitioner = HashPartitioner(self.n)
        self.runtime = TermRuntime()
        self.states: dict[str, KeyedStateRDD | SetRDD] = {}
        self.splitters: dict[str, Callable] = {}
        self.assemblers: dict[str, Callable] = {}
        self.negators: dict[str, Callable] = {}
        self.key_fns: dict[str, Callable] = {}
        #: Current-iteration fresh deltas, per view, per partition.
        self._current_d: dict[str, list[list[tuple]]] = {}
        self._two_col: dict[str, bool] = {}
        self._base_partition_objects: dict[int, list[Partition]] = {}
        #: Memory-charge groups of this clique's broadcast variables.
        self._broadcast_groups: list[str] = []
        # --- kernel layer (wall-clock only; see repro.engine.kernels) ---
        self._use_kernels = config.kernels
        self._adaptive = config.kernels and config.adaptive_joins
        #: Columnar batch layer (see repro.engine.columnar): rides on the
        #: kernel family — no kernels, no batches.
        self._use_columnar = config.kernels and config.columnar_batches
        #: Views whose shuffled delta rows may be exact-duplicate-deduped
        #: before shipping (columnar mode only): set-semantics unions and
        #: builtin min/max heads, where a repeated row can never change
        #: state or re-emit a fresh delta — the merge loops use strict
        #: comparisons and set membership.  ``sum``/``count`` and custom
        #: aggregates *accumulate*, so duplicate rows are load-bearing
        #: there and those views are excluded.
        self._dedup_views = frozenset(
            name for name, view in planned.views.items()
            if all(a is None or (a is AGG_BY_NAME.get(a.name)
                                 and a.name in ("min", "max"))
                   for a in view.aggregates))
        #: Per-view batched shuffle routers (kernels mode).
        self._routers: dict[str, Callable] = {}
        #: Per-view fused partial-aggregation folds for two-column heads.
        self._fold_kernels: dict[str, Callable | None] = {}
        #: Cached state-side build tables:
        #: (view, partition, key_positions, pad) -> [version, count, table].
        self._state_tables: dict[tuple, list] = {}
        #: Planner's strategy per co-partitioned step ("hash"/"sort_merge").
        self._copartition_strategy: dict[int, str] = {}
        #: Alternative build structures the adaptive selector re-indexes:
        #: (step_id, partition, kind) -> hash table or sorted run.
        self._alt_builds: dict[tuple[int, int, str], object] = {}
        self.selector = (AdaptiveJoinSelector(cluster.metrics)
                         if self._adaptive else None)
        # --- process-backend remote session (see engine/backend/) ---
        #: True while iterate/decompose work ships to the worker pool.
        self._remote = False
        #: True once a remote *iterate* ran: final state lives worker-side
        #: and must be collected before results are read.
        self._remote_collect = False
        self._session_id: str | None = None
        #: Per-view |D| of the last remote iteration (the driver's
        #: ``_current_d`` stays empty in remote mode).
        self._remote_delta_by_view: dict[str, int] = {}
        self._validate()

    def resolve(self, name: str) -> Relation:
        """Resolve a base input under set semantics.

        Recursion evaluates over *facts*: a base row appearing twice is
        one fact, and feeding the duplicate through a join would derive a
        duplicate contribution that inflates ``sum``/``count`` heads.
        Plain (non-recursive) SQL keeps its bag semantics — only inputs
        to the fixpoint are deduplicated, order-preserving.
        """
        relation = self._resolved.get(name)
        if relation is None:
            relation = self._resolve_raw(name)
            distinct = list(dict.fromkeys(relation.rows))
            if len(distinct) != len(relation.rows):
                relation = Relation(relation.name, relation.columns, distinct)
            self._resolved[name] = relation
        return relation

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        if self.config.evaluation == "naive":
            for view in self.planned.views.values():
                if any(a is not None and a.name in ("sum", "count")
                       for a in view.aggregates):
                    raise PlanningError(
                        "naive evaluation re-derives from totals and would "
                        "double-count sum/count aggregates; use DSN")

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _setup_states(self) -> None:
        for name, view in self.planned.views.items():
            if view.has_aggregates:
                self.states[name] = KeyedStateRDD(
                    self.n, view.aggregate_functions, self.partitioner,
                    use_kernels=self._use_kernels)
            else:
                self.states[name] = SetRDD(self.n, self.partitioner)
            self.splitters[name] = _make_splitter(view)
            self.assemblers[name] = _make_assembler(view)
            self.negators[name] = _make_negator(view)
            self.key_fns[name] = make_key_fn(view.partition_key_positions)
            self._current_d[name] = [[] for _ in range(self.n)]
            # Hot-path flag: the ubiquitous (key, value) head shape, where
            # rows and (key, values) pairs coincide up to 1-tuple wrapping.
            self._two_col[name] = (view.group_positions == (0,)
                                   and view.aggregate_positions == (1,))
            if self._use_kernels:
                self._routers[name] = make_router(
                    view.partition_key_positions, self.n)
                self._fold_kernels[name] = (
                    make_fold_kernel(view.aggregate_functions[0])
                    if self._two_col[name] else None)

        def state_rows(view_name: str, partition: int) -> list[tuple]:
            state = self.states[view_name]
            if partition == -1:
                if isinstance(state, SetRDD):
                    return state.collect()
                return state.collect_rows()
            if isinstance(state, SetRDD):
                return list(state.partitions[partition])
            return state.partition_rows(partition)

        def delta_rows(view_name: str, partition: int) -> list[tuple]:
            if partition == -1:
                out: list[tuple] = []
                for rows in self._current_d[view_name]:
                    out.extend(rows)
                return out
            return self._current_d[view_name][partition]

        def state_total(view_name: str, partition: int, key) -> tuple | None:
            state = self.states[view_name]
            return state.partitions[partition].get(key)

        self.runtime.state_rows = state_rows
        self.runtime.delta_rows = delta_rows
        self.runtime.state_total = state_total
        if self._use_kernels:
            self.runtime.state_table = self._state_table

    # ------------------------------------------------------------------
    # kernel layer: cached state-side build tables
    # ------------------------------------------------------------------

    def _state_table(self, view_name: str, partition: int,
                     key_positions: tuple[int, ...],
                     pad: tuple[int, int] | None) -> dict:
        """Version-validated hash table over a view's state partition.

        ``pad=None`` keys *raw* state rows by relative positions (the
        codegen path); ``pad=(offset, arity)`` keys *padded* rows by
        absolute slots (the interpreted HashJoinStep path).  Invalidation
        rules (see docs/INTERNALS.md):

        - ``partition == -1`` (gather) always bypasses the cache: gathered
          state spans partitions that sibling tasks of the *current* stage
          are still mutating, so no stable version exists to validate.
        - A cached entry is reused verbatim when the partition's
          ``(version, row count)`` is unchanged.
        - A SetRDD partition whose version matches but whose count grew by
          exactly the current fresh delta is updated *incrementally* (the
          all-relation is append-only between snapshots); anything else —
          keyed states change values in place, restores bump the version —
          is rebuilt from scratch.
        """
        metrics = self.cluster.metrics
        if partition == -1:
            metrics.inc("kernel_state_cache_bypass")
            return self._build_state_side(
                self.runtime.state_rows(view_name, -1), key_positions, pad)

        state = self.states[view_name]
        version = state.versions[partition]
        count = len(state.partitions[partition])
        cache_key = (view_name, partition, key_positions, pad)
        entry = self._state_tables.get(cache_key)
        if entry is not None and entry[0] == version:
            if entry[1] == count:
                metrics.inc("kernel_state_cache_hits")
                return entry[2]
            fresh = self._current_d[view_name][partition]
            if (isinstance(state, SetRDD)
                    and entry[1] + len(fresh) == count):
                # Append-only growth: exactly the fresh rows are missing.
                self._append_state_rows(entry[2], fresh, key_positions, pad)
                entry[1] = count
                metrics.inc("kernel_state_cache_updates")
                return entry[2]
        metrics.inc("kernel_state_cache_misses")
        table = self._build_state_side(
            self.runtime.state_rows(view_name, partition), key_positions, pad)
        self._state_tables[cache_key] = [version, count, table]
        return table

    @staticmethod
    def _build_state_side(rows: list[tuple], key_positions: tuple[int, ...],
                          pad: tuple[int, int] | None) -> dict:
        table: dict = {}
        if pad is not None:
            offset, arity = pad
            rows = [pad_row(r, offset, arity) for r in rows]
            key_fn = make_slots_key(key_positions)
        else:
            key_fn = make_key_fn(key_positions)
        for row in rows:
            table.setdefault(key_fn(row), []).append(row)
        return table

    @staticmethod
    def _append_state_rows(table: dict, rows: list[tuple],
                           key_positions: tuple[int, ...],
                           pad: tuple[int, int] | None) -> None:
        if pad is not None:
            offset, arity = pad
            rows = [pad_row(r, offset, arity) for r in rows]
            key_fn = make_slots_key(key_positions)
        else:
            key_fn = make_key_fn(key_positions)
        for row in rows:
            table.setdefault(key_fn(row), []).append(row)

    def _setup_base_relations(self) -> None:
        """Broadcast / co-partition every base input and build join sides."""
        config = self.config
        cluster = self.cluster

        # One broadcast per distinct (relation, filter) pair, regardless of
        # how many steps consume it.
        broadcast_charged: set[tuple[str, str]] = set()
        build_cpu = 0.0

        for plan in self.planned.base_plans:
            relation = self.resolve(plan.relation)
            t0 = time.perf_counter()
            if self._use_kernels and relation.rows:
                padder = make_padder(plan.offset, plan.arity,
                                     len(relation.rows[0]))
                padded = [padder(row) for row in relation.rows]
            else:
                padded = [pad_row(row, plan.offset, plan.arity)
                          for row in relation.rows]
            if plan.filter is not None:
                predicate = plan.filter
                padded = [row for row in padded if predicate(row)]

            if plan.mode == "broadcast":
                charge_key = (plan.relation.lower(), plan.filter_sql)
                if charge_key not in broadcast_charged:
                    broadcast_charged.add(charge_key)
                    raw = [row for row in relation.rows]
                    broadcast = cluster.broadcast(
                        raw,
                        compress=config.broadcast_compression,
                        ship_hash_table=not config.broadcast_compression)
                    if broadcast.memory_group:
                        self._broadcast_groups.append(broadcast.memory_group)
                if plan.equi:
                    table = build_hash_table(padded,
                                             make_slots_key(plan.build_slots))
                    self.runtime.broadcast_tables[plan.step_id] = table
                else:
                    self.runtime.broadcast_tables[plan.step_id] = padded
            else:  # copartition
                key_fn = make_slots_key(plan.build_slots)
                columnar_tables = None
                if (self._use_columnar and len(plan.build_slots) == 1
                        and len(padded) >= MIN_BATCH_ROWS):
                    # Single-pass columnar routing over the *extracted*
                    # key column — the column form of
                    # ``ColumnBatch.partition_ids`` applied in place, so
                    # the non-key columns are never decomposed and the
                    # existing row tuples are reused as-is.  Bucket
                    # order matches make_router exactly.
                    pos = plan.build_slots[0]
                    key_column = [row[pos] for row in padded]
                    n = self.n
                    if set(map(type, key_column)) == {int}:
                        pids = [key % n for key in key_column]
                    else:
                        pids = column_partition_ids(key_column, n)
                    buckets: list[list] = [[] for _ in range(n)]
                    if config.join_strategy != "sort_merge":
                        # Fused route + hash-table build: one sweep
                        # fills the bucket lists and their build tables
                        # together — no key_fn call per row, no second
                        # pass over the buckets.  Table entry order
                        # matches build_hash_table exactly.
                        columnar_tables = [{} for _ in range(n)]
                        for pid, key, row in zip(pids, key_column,
                                                 padded):
                            buckets[pid].append(row)
                            table = columnar_tables[pid]
                            entry = table.get(key)
                            if entry is None:
                                table[key] = [row]
                            else:
                                entry.append(row)
                    else:
                        for pid, row in zip(pids, padded):
                            buckets[pid].append(row)
                    cluster.metrics.inc("columnar_routes")
                elif self._use_kernels:
                    buckets = make_router(plan.build_slots, self.n)(padded)
                else:
                    buckets = [[] for _ in range(self.n)]
                    for row in padded:
                        buckets[self.partitioner.partition_of(key_fn(row))].append(row)
                partitions = [
                    Partition(i, bucket, cluster.worker_for_partition(i))
                    for i, bucket in enumerate(buckets)
                ]
                self._base_partition_objects[plan.step_id] = partitions
                # Cached co-partitioned base blocks live on workers for
                # the whole fixpoint; charge them like Spark storage.
                for partition in partitions:
                    if partition.rows:
                        cluster.memory.charge(
                            "base", str(plan.step_id), partition.index,
                            partition.worker, partition.size_bytes())
                if config.join_strategy == "sort_merge":
                    built = [sort_rows(bucket, key_fn) for bucket in buckets]
                    self._copartition_strategy[plan.step_id] = "sort_merge"
                elif columnar_tables is not None:
                    built = columnar_tables
                    self._copartition_strategy[plan.step_id] = "hash"
                else:
                    built = [build_hash_table(bucket, key_fn)
                             for bucket in buckets]
                    self._copartition_strategy[plan.step_id] = "hash"
                self.runtime.base_partitions[plan.step_id] = built
                # The raw bucket lists alias Partition.rows: streaming
                # inserts reach both; the adaptive selector scans or
                # re-indexes them when overriding the planner's strategy.
                self.runtime.base_raw[plan.step_id] = buckets
            build_cpu += time.perf_counter() - t0

        # The builds above happen on workers in parallel; charge them as
        # one setup stage.
        if self.planned.base_plans:
            cluster.metrics.advance(
                cluster.cost_model.stage_overhead_s
                + build_cpu * cluster.cost_model.cpu_scale / cluster.num_workers,
                label="fixpoint-setup")
            cluster.metrics.inc("stages")

    # ------------------------------------------------------------------
    # base case
    # ------------------------------------------------------------------

    #: Synthetic shuffle-source id for constant base rows, which are
    #: emitted by the driver rather than by any ``fixpoint-base`` task.
    _DRIVER_SOURCE = -1

    def _evaluate_base_rules(self) -> dict[str, Dataset]:
        """Run every base rule once and shuffle results into initial deltas.

        Each ``fixpoint-base`` task is its own shuffle source, attributed
        to the worker that actually ran it, so the initial exchange
        charges ``shuffle_remote_bytes`` per producing worker instead of
        pretending every base delta originated on worker 0.
        """
        outputs: dict[str, dict[int, list[tuple]]] = defaultdict(
            lambda: defaultdict(list))
        source_workers: dict[int, int] = {}
        tasks: list[StageTask] = []
        chunk_views: list[str] = []

        for base_rule in self.planned.base_rules:
            if base_rule.term is None:
                outputs[base_rule.view][self._DRIVER_SOURCE].extend(
                    base_rule.constant_rows)
                source_workers[self._DRIVER_SOURCE] = 0
                continue
            relation = self.resolve(base_rule.driving_relation)
            rows = relation.rows
            chunk = max(1, -(-len(rows) // self.n))
            term = base_rule.term
            for i in range(self.n):
                piece = rows[i * chunk:(i + 1) * chunk]
                if not piece:
                    continue
                tasks.append(StageTask(
                    len(tasks),
                    [Partition(len(tasks), piece,
                               self.cluster.worker_for_partition(i))],
                    (lambda p, t=term: t.evaluate(p, 0, self.runtime)),
                    preferred_worker=self.cluster.worker_for_partition(i)))
                chunk_views.append(base_rule.view)

        if tasks:
            results = self.cluster.run_stage("fixpoint-base", tasks)
            for result, view in zip(results, chunk_views):
                outputs[view][result.index].extend(result.output)
                source_workers[result.index] = result.worker

        return self._exchange_outputs(outputs, source_workers)

    # ------------------------------------------------------------------
    # shuffles
    # ------------------------------------------------------------------

    def _exchange_outputs(self, per_view_buckets: dict[str, dict[int, list[tuple]]],
                          source_workers: dict[int, int] | None = None
                          ) -> dict[str, Dataset]:
        """Bucket rows by each view's partition key and exchange them.

        ``per_view_buckets`` maps view -> {source id -> rows}; rows are
        re-bucketed by target partition here.
        """
        incoming: dict[str, Dataset] = {}
        for name, view in self.planned.views.items():
            key_fn = self.key_fns[name]
            router = self._routers.get(name)
            map_outputs = []
            for source, rows in per_view_buckets.get(name, {}).items():
                if router is not None:
                    buckets = {pid: bucket
                               for pid, bucket in enumerate(router(rows))
                               if bucket}
                else:
                    buckets: dict[int, list[tuple]] = defaultdict(list)
                    for row in rows:
                        pid = self.partitioner.partition_of(key_fn(row))
                        buckets[pid].append(row)
                worker = (source_workers or {}).get(source, source % self.cluster.num_workers)
                map_outputs.append((worker, buckets))
            incoming[name] = self.cluster.exchange(
                map_outputs, self.n, self.partitioner,
                view.partition_key_positions)
        return incoming

    def _exchange_prebucketed(
            self, per_view_outputs: dict[str, list[tuple[int, dict]]]
    ) -> dict[str, Dataset]:
        """Exchange task-emitted shuffle buckets directly (kernels mode).

        The combined-stage tasks already routed their output rows into
        per-partition buckets; re-flattening and re-routing them (what
        :meth:`_exchange_outputs` does) is pure overhead.  Per-partition
        row sequences — and therefore results and memory charges — are
        identical either way.
        """
        incoming: dict[str, Dataset] = {}
        for name, view in self.planned.views.items():
            incoming[name] = self.cluster.exchange(
                per_view_outputs.get(name, []), self.n, self.partitioner,
                view.partition_key_positions)
        return incoming

    # ------------------------------------------------------------------
    # merge (the Reduce side)
    # ------------------------------------------------------------------

    def _charge_immutable_union(self) -> None:
        """The SetRDD ablation's per-iteration cost (Section 6.1).

        Without the mutable all-relation, each iteration materializes a
        new immutable RDD via ``union().distinct()`` — which repartitions
        the *entire* all-relation, not just the delta ("most of its data
        redundantly copied", as the paper puts it).  Charge that shuffle.
        """
        nbytes = sum(state.size_bytes() for state in self.states.values())
        remote = nbytes * (self.cluster.num_workers - 1) / max(
            1, self.cluster.num_workers)
        self.cluster.metrics.advance(
            self.cluster.cost_model.transfer_seconds(
                int(remote), self.cluster.num_workers),
            label="immutable-union")
        self.cluster.metrics.inc("immutable_union_bytes", nbytes)

    def _merge_into_state(self, view_name: str, partition: int,
                          rows: list[tuple]) -> list[tuple]:
        """Union/aggregate incoming rows into the state; return fresh delta.

        The cached state partition is the merge's working set: it is
        touched first (reading it back from the spill tier if the memory
        governor evicted it) and re-charged at its post-merge size, so
        per-worker accounting tracks the all-relation as it grows.
        """
        memory = self.cluster.memory
        memory.touch("state", view_name, partition)
        state = self.states[view_name]
        if not self.config.use_setrdd:
            # Immutable-RDD ablation: every union copies the partition.
            state.replace_partition(partition, (
                set(state.partitions[partition])
                if isinstance(state, SetRDD)
                else dict(state.partitions[partition])))
        fresh = merge_into_state_partition(
            state, partition, rows, self._two_col[view_name],
            self.splitters[view_name], self.assemblers[view_name])
        memory.charge("state", view_name, partition,
                      self.cluster.worker_for_partition(partition),
                      state.partition_size_bytes(partition))
        return fresh

    # ------------------------------------------------------------------
    # map (the join side)
    # ------------------------------------------------------------------

    def _evaluate_terms(self, partition: int,
                        naive: bool) -> dict[str, dict[int, list[tuple]]]:
        """Run every term over one partition's delta; bucket the outputs."""
        from repro.engine.aggregates import partial_aggregate

        # The joins read the cached base blocks and broadcast copies:
        # touch them so LRU eviction prefers colder segments, and so a
        # spilled block is read back (and charged) before use.
        memory = self.cluster.memory
        home = self.cluster.worker_for_partition(partition)
        for step_id in self._base_partition_objects:
            memory.touch("base", str(step_id), partition)
        for group in self._broadcast_groups:
            memory.touch("broadcast", group, home)

        per_view: dict[str, dict[int, list[tuple]]] = {}
        collected: dict[str, list[tuple]] = defaultdict(list)
        for term in self.planned.terms:
            if naive:
                delta = self.runtime.state_rows(term.delta_view, partition)
            else:
                delta = self._current_d[term.delta_view][partition]
            if not delta:
                continue
            rows = self._evaluate_term(term, delta, partition)
            if term.negate and rows:
                negate = self.negators[term.view]
                rows = [negate(r) for r in rows]
            collected[term.view].extend(rows)

        for view_name, rows in collected.items():
            view = self.planned.views[view_name]
            if view.has_aggregates and self.config.partial_aggregation:
                functions = view.aggregate_functions
                fold = self._fold_kernels.get(view_name)
                if fold is not None:
                    rows = fold(rows)
                elif self._two_col[view_name]:
                    # Fused split+combine+assemble for (key, value) heads.
                    combine = functions[0].combine
                    combined: dict = {}
                    get = combined.get
                    for key, value in rows:
                        old = get(key)
                        combined[key] = (value if old is None
                                         else combine(old, value))
                    rows = list(combined.items())
                else:
                    splitter = self.splitters[view_name]
                    assembler = self.assemblers[view_name]
                    pairs = partial_aggregate(
                        [splitter(r) for r in rows], functions)
                    rows = [assembler(k, v) for k, v in pairs]
            router = self._routers.get(view_name)
            if router is not None:
                per_view[view_name] = {
                    pid: bucket for pid, bucket in enumerate(router(rows))
                    if bucket}
            else:
                buckets: dict[int, list[tuple]] = defaultdict(list)
                key_fn = self.key_fns[view_name]
                partition_of = self.partitioner.partition_of
                for row in rows:
                    buckets[partition_of(key_fn(row))].append(row)
                per_view[view_name] = buckets
        return per_view

    def _evaluate_term(self, term: CompiledTerm, delta: list[tuple],
                       partition: int) -> list[tuple]:
        """Evaluate one term, letting the adaptive selector re-strategize
        its co-partitioned join when the observed cardinalities warrant."""
        selector = self.selector
        if selector is None or term.copartition_index is None:
            return term.evaluate(delta, partition, self.runtime)
        step = term.steps[term.copartition_index]
        default = self._copartition_strategy[step.step_id]
        build_rows = self.runtime.base_raw[step.step_id][partition]
        choice = selector.choose(
            step.step_id, partition, default,
            term.codegen_fn is not None, len(delta), len(build_rows))
        if choice == default:
            return term.evaluate(delta, partition, self.runtime)
        return self._evaluate_with_strategy(term, delta, partition, choice)

    def _evaluate_with_strategy(self, term: CompiledTerm, delta: list[tuple],
                                partition: int, strategy: str) -> list[tuple]:
        """Interpreted pipeline with the co-partitioned join re-strategized.

        All three bodies compute the same equi join over the same cached
        build rows, so results match :meth:`CompiledTerm.evaluate` exactly
        (hash and nested-loop even emit the same row order; a sort-merge
        override reorders rows, which set/monotone-aggregate consumption
        absorbs).
        """
        if term.padder is not None:
            rows = [term.padder(r) for r in delta]
        else:
            rows = [pad_row(r, term.delta_offset, term.arity) for r in delta]
        if term.delta_prefilter is not None:
            predicate = term.delta_prefilter
            rows = [row for row in rows if predicate(row)]
        for index, step in enumerate(term.steps):
            if not rows:
                return []
            if index == term.copartition_index:
                rows = self._apply_copartition_join(step, rows, partition,
                                                    strategy)
            else:
                rows = step.apply(rows, partition, self.runtime)
        project = term.project
        return [project(row) for row in rows]

    def _apply_copartition_join(self, step, rows: list[tuple], partition: int,
                                strategy: str) -> list[tuple]:
        """One co-partitioned base join under an overridden strategy."""
        step_id = step.step_id
        default = self._copartition_strategy[step_id]
        build_rows = self.runtime.base_raw[step_id][partition]
        if strategy == "nested_loop":
            return nested_loop_equi(rows, build_rows, step.probe_key,
                                    step.build_key, merge_padded)
        if strategy == "hash":
            if default == "hash":
                table = self.runtime.base_partitions[step_id][partition]
            else:
                table = self._alt_build(step_id, partition, "hash",
                                        step.build_key, build_rows)
            return hash_probe_join(rows, table, step.probe_key, merge_padded)
        # sort_merge
        if default == "sort_merge":
            base_sorted = self.runtime.base_partitions[step_id][partition]
        else:
            base_sorted = self._alt_build(step_id, partition, "sorted",
                                          step.build_key, build_rows)
        sorted_delta = sort_rows(rows, step.probe_key)
        return sort_merge_join(sorted_delta, base_sorted, step.probe_key,
                               step.build_key, merge_padded)

    def _alt_build(self, step_id: int, partition: int, kind: str,
                   build_key: Callable, build_rows: list[tuple]):
        """Lazily build (and cache) the non-default build structure."""
        key = (step_id, partition, kind)
        built = self._alt_builds.get(key)
        if built is None:
            built = (build_hash_table(build_rows, build_key) if kind == "hash"
                     else sort_rows(build_rows, build_key))
            self._alt_builds[key] = built
        return built

    def invalidate_base_build(self, step_id: int, partition: int) -> None:
        """Drop adaptive build caches after a streaming base insert.

        The primary builds (``runtime.base_partitions``) and the raw
        buckets are updated in place by the streaming absorber; only the
        lazily re-indexed alternates can go stale."""
        self._alt_builds.pop((step_id, partition, "hash"), None)
        self._alt_builds.pop((step_id, partition, "sorted"), None)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def _apply_kernel_gate(self) -> None:
        """Disable kernel dispatch for tiny inputs (wall-clock only).

        The kernel layer pays per-query setup — router/padders compiled
        per view, state-table cache plumbing, adaptive-selector state —
        that a sub-millisecond query never amortizes (the BENCH_5
        regressions on ``same_generation``/``bom_stratified``).  When
        the clique's distinct base inputs total fewer than
        ``config.kernel_min_rows`` rows, route everything through the
        reference loops instead.  Kernels are bit-exact with the
        reference paths (including iteration counts), so the gate can
        never change results — only where the wall-clock time goes.
        """
        threshold = self.config.kernel_min_rows
        if not self._use_kernels or threshold <= 0:
            return
        seen: set[str] = set()
        total = 0
        for plan in self.planned.base_plans:
            key = plan.relation.lower()
            if key not in seen:
                seen.add(key)
                total += len(self.resolve(plan.relation).rows)
        for base_rule in self.planned.base_rules:
            if base_rule.driving_relation:
                key = base_rule.driving_relation.lower()
                if key not in seen:
                    seen.add(key)
                    total += len(self.resolve(base_rule.driving_relation).rows)
        if total >= threshold:
            return
        self._use_kernels = False
        self._adaptive = False
        self._use_columnar = False
        self.selector = None
        self.cluster.metrics.inc("kernel_small_input_gate")

    # ------------------------------------------------------------------
    # process-backend remote sessions (see repro.engine.backend)
    # ------------------------------------------------------------------

    def _remote_eligible(self) -> bool:
        """True when this clique's per-iteration work can ship to the
        process pool bit-exactly.

        The worker mirrors the *kernels-mode DSN combined-stage* hot path
        (and the grouped/fused decomposed runners) — nothing else.  Every
        feature that reads driver-side state mid-iteration (gather joins,
        checkpoints, memory budgets, simulated fault injectors, sim-time
        deadlines) keeps the query on the simulated oracle.  The gate can
        only route *where* the work runs; results are identical either
        way, which the ``process_backend`` differential suite enforces.
        """
        config = self.config
        cluster = self.cluster
        if not cluster.backend.remote_ready():
            return False
        if config.evaluation != "dsn" or not config.stage_combination:
            return False
        if not config.use_setrdd or not self._use_kernels:
            return False
        if self.checkpointer is not None or config.deadline_seconds is not None:
            return False
        if cluster.memory.budget_bytes is not None:
            return False
        if (cluster.failure_injectors or cluster.worker_loss_injectors
                or cluster.memory_pressure_injectors
                or cluster.corruption_injectors
                or cluster.driver_kill_injectors):
            return False
        for term in self.planned.terms:
            fn = term.codegen_fn
            if fn is None or getattr(fn, "_generated_source", None) is None:
                return False
            for step in term.steps:
                if isinstance(step, HashJoinStep) and step.gather:
                    return False
        return True

    def _install_remote_session(self) -> None:
        from repro.engine.backend.payloads import build_install_spec

        backend = self.cluster.backend
        sid = backend.new_session_id()
        backend.install_session(build_install_spec(self, sid))
        self._session_id = sid
        self._remote = True

    def _collect_remote_states(self) -> None:
        """Pull final state partitions back from the pool into the
        driver's (empty) state structures before results are read."""
        if not self._remote_collect:
            return
        self._remote_collect = False
        collected = self.cluster.backend.collect_states(self._session_id)
        for name, parts in collected.items():
            state = self.states[name]
            for partition, data in parts.items():
                state.replace_partition(partition, data)

    def execute(self, resume: dict | None = None) -> FixpointResult:
        """Run the clique to its fixpoint.

        ``resume`` is a verified checkpoint payload (see
        :mod:`repro.core.checkpoint`): states, next-iteration deltas,
        iteration counter, and clock/counter snapshot.  The base rules
        are *not* re-evaluated on resume — their contribution is already
        folded into the checkpointed state — but base relations are
        re-broadcast / re-co-partitioned (the joins need them), exactly
        as a restarted Spark driver would reload its base RDDs.
        """
        self._apply_kernel_gate()
        tracer = self.cluster.tracer
        with tracer.span("fixpoint", ",".join(self.planned.views)) as span:
            self._setup_states()
            self._setup_base_relations()
            if resume is not None:
                incoming = self._restore_checkpoint(resume)
                iterations, delta_history = self._run_to_fixpoint(
                    incoming, start_iterations=resume["iteration"],
                    delta_history=resume["delta_history"])
                span.annotate(iterations=iterations,
                              mode=self.config.evaluation,
                              resumed_from=resume["iteration"],
                              delta_history=list(delta_history))
                return self._finish(iterations, delta_history)
            if self._remote_eligible():
                self._install_remote_session()
            try:
                incoming = self._evaluate_base_rules()

                if self.planned.decomposable \
                        and self.config.evaluation == "dsn" \
                        and self.checkpointer is None:
                    iterations = self._execute_decomposed(incoming)
                    span.annotate(iterations=iterations, mode="decomposed")
                    return self._finish(iterations, [])

                try:
                    iterations, delta_history = self._run_to_fixpoint(incoming)
                except FixpointNotReachedError as exc:
                    if self._remote_collect:
                        self._collect_remote_states()
                        exc.partial_result = self._relations()
                    raise
                self._collect_remote_states()
                span.annotate(iterations=iterations,
                              mode=self.config.evaluation,
                              delta_history=list(delta_history))
                return self._finish(iterations, delta_history)
            finally:
                if self._remote:
                    self.cluster.backend.release_session(self._session_id)
                    self._remote = False
                    self._session_id = None

    def _run_to_fixpoint(self, incoming: dict[str, Dataset],
                         start_iterations: int = 0,
                         delta_history: list[int] | None = None
                         ) -> tuple[int, list[int]]:
        """Iterate until quiescence; shared by one-shot, incremental
        (see :mod:`repro.core.streaming`) and checkpoint-resumed
        execution (``start_iterations``/``delta_history`` continue the
        absolute iteration count from the restored point)."""
        naive = self.config.evaluation == "naive"
        combine = self.config.stage_combination
        iterations = start_iterations
        delta_history = list(delta_history) if delta_history else []

        # Termination keys off the *post-merge* delta D: under semi-naive
        # evaluation D empty coincides with empty incoming shuffles, but
        # under naive evaluation every round re-derives (and re-ships) the
        # full relation, so only the merge can detect the fixpoint.
        tracer = self.cluster.tracer
        memory = self.cluster.memory
        while True:
            iterations += 1
            if iterations > self.config.max_iterations:
                last_delta = delta_history[-1] if delta_history else 0
                raise FixpointNotReachedError(
                    f"fixpoint not reached within "
                    f"{self.config.max_iterations} iterations: the last "
                    f"completed iteration ({iterations - 1}) still "
                    f"produced a delta of {last_delta} rows",
                    iterations - 1, partial_result=self._relations())

            memory.begin_iteration()
            with tracer.span("iteration", f"iteration-{iterations}",
                             index=iterations) as span:
                if combine:
                    incoming, d_total = self._iterate_combined(incoming, naive)
                else:
                    incoming, d_total = self._iterate_two_stage(incoming, naive)
                if not self.config.use_setrdd:
                    self._charge_immutable_union()
                self.cluster.metrics.inc("iterations")
                iter_hwm = memory.iteration_high_water()
                span.annotate(
                    delta_total=d_total,
                    delta_by_view=(
                        dict(self._remote_delta_by_view) if self._remote
                        else {
                            name: sum(len(rows) for rows in partitions)
                            for name, partitions in self._current_d.items()}),
                    memory_peak_bytes=max(iter_hwm.values(), default=0),
                    memory_hwm_by_worker={f"w{w}": nbytes
                                          for w, nbytes in iter_hwm.items()})
            if d_total == 0:
                break
            delta_history.append(d_total)
            if self.checkpointer is not None \
                    and self.checkpointer.due(iterations):
                self._write_checkpoint(iterations, delta_history, incoming)

        return iterations, delta_history

    # ------------------------------------------------------------------
    # durable checkpoints (see repro.core.checkpoint)
    # ------------------------------------------------------------------

    def _checkpoint_bytes(self, incoming: dict[str, Dataset]) -> int:
        """Wire-size estimate of the semi-naive working set (all + delta)."""
        est = sum(state.size_bytes() for state in self.states.values())
        for dataset in incoming.values():
            for part in dataset.partitions:
                if part.rows:
                    est += part.size_bytes()
        return est

    def _write_checkpoint(self, iteration: int, delta_history: list[int],
                          incoming: dict[str, Dataset]) -> None:
        """Persist everything iteration ``iteration + 1`` needs to run.

        The payload holds the *all* relations, the shuffled deltas the
        next iteration consumes, the iteration counter/history, and the
        scheduler's RNG state; the checkpointer adds the clock/counter
        snapshot *after* charging the write, so a resumed run continues
        from exactly where an uninterrupted one would be.
        """
        payload = {
            "iteration": iteration,
            "delta_history": list(delta_history),
            "states": {name: state.dump_state()
                       for name, state in self.states.items()},
            "incoming": {name: [list(part.rows)
                                for part in dataset.partitions]
                         for name, dataset in incoming.items()},
            "rng_state": self._scheduler_rng_state(),
        }
        self.checkpointer.save(iteration, payload,
                               self._checkpoint_bytes(incoming))

    def _scheduler_rng_state(self):
        rng = getattr(self.cluster.scheduler, "_rng", None)
        return rng.getstate() if rng is not None else None

    def _restore_checkpoint(self, payload: dict) -> dict[str, Dataset]:
        """Install a checkpoint payload; returns the restored deltas.

        Restores, in order: the per-view state structures (through
        ``load_state``, so versions bump and kernel caches invalidate),
        their worker-memory charges, the in-flight shuffle datasets, the
        scheduler RNG, and finally the simulated clock + counters —
        then charges the blob's disk read on top and re-arms the
        deadline relative to the restored clock.
        """
        cluster = self.cluster
        metrics = cluster.metrics
        for name, dumped in payload["states"].items():
            state = self.states[name]
            state.load_state(dumped)
            for p in range(self.n):
                size = state.partition_size_bytes(p)
                if size:
                    cluster.memory.charge("state", name, p,
                                          cluster.worker_for_partition(p),
                                          size)
        incoming: dict[str, Dataset] = {}
        for name, view in self.planned.views.items():
            incoming[name] = cluster.restore_exchange(
                payload["incoming"][name], self.partitioner,
                view.partition_key_positions)
        rng_state = payload.get("rng_state")
        rng = getattr(cluster.scheduler, "_rng", None)
        if rng_state is not None and rng is not None:
            rng.setstate(rng_state)
        # Clock/counters jump to the checkpoint's snapshot (taken after
        # the write charge), then the restore read is charged on top.
        metrics.sim_time = payload["sim_time"]
        metrics.counters.clear()
        metrics.counters.update(payload["counters"])
        if self.checkpointer is not None:
            self.checkpointer.charge_restore(self._checkpoint_bytes(incoming))
        if cluster.deadline is not None \
                and self.config.deadline_seconds is not None:
            # A resumed query gets a fresh deadline window from the
            # restored clock; the original window measured from query
            # start would already be spent.
            cluster.deadline = metrics.sim_time + self.config.deadline_seconds
        return incoming

    def _release_consumed_shuffles(self, incoming: dict[str, Dataset]) -> None:
        """Free shuffle buffers once a merge stage has absorbed them.

        The incoming deltas were charged to worker memory by
        ``Cluster.exchange``; after the Reduce (or combined ShuffleMap)
        stage their rows live inside the cached all-relation state, so the
        shuffle-tier copies are released — exactly when Spark drops
        consumed shuffle blocks.
        """
        for dataset in incoming.values():
            if dataset.memory_group:
                self.cluster.memory.release_group("shuffle",
                                                  dataset.memory_group)

    def _state_snapshot_hooks(self, partition: int):
        """Snapshot/restore for tasks that mutate the cached state.

        Only consulted under failure injection; replaying a failed merge
        from the snapshot is the simulator's version of recomputing from
        the cached checkpoint (Section 6.1).
        """
        states = self.states

        def snapshot():
            return {name: state.snapshot_partition(partition)
                    for name, state in states.items()}

        def restore(saved):
            for name, data in saved.items():
                states[name].restore_partition(partition, data)

        return snapshot, restore

    def _stage_inputs(self, incoming: dict[str, Dataset],
                      partition: int) -> list[Partition]:
        """Task inputs for locality accounting: delta + cached base blocks."""
        inputs = [incoming[name].partitions[partition]
                  for name in self.planned.views]
        for partitions in self._base_partition_objects.values():
            inputs.append(partitions[partition])
        return inputs

    def _iterate_remote(self, incoming: dict[str, Dataset]
                        ) -> tuple[dict[str, Dataset], int]:
        """One combined iteration with merge/derive/route on the pool.

        The driver only ships each partition's incoming delta rows and
        routes the returned shuffle buckets between iterations; the
        all-relation state lives worker-side until
        :meth:`_collect_remote_states`.  Tasks carry picklable payloads
        instead of closures, which is what makes the process backend
        claim the batch (``wants_batch``).
        """
        self._remote_collect = True
        view_names = list(self.planned.views)
        sid = self._session_id
        metrics = self.cluster.metrics
        use_columnar = self._use_columnar
        tasks = []
        for p in range(self.n):
            rows_by_view = {}
            for name in view_names:
                rows = incoming[name].partitions[p].rows
                if rows:
                    # Columnar mode ships delta partitions as encoded
                    # ColumnBatches (byte planes + DEFLATE) instead of
                    # pickled row lists; the worker's merge path accepts
                    # either form bit-exactly.  An incoming bucket is the
                    # concatenation of every source partition's
                    # contributions for the same keys, so it is thick
                    # with exact-duplicate rows (62% of cc's traffic);
                    # for idempotent merges they are dropped before
                    # encoding — first occurrence wins, order preserved,
                    # so the worker's state and fresh delta are
                    # bit-identical to the row path's.
                    rows = list(rows)
                    if (use_columnar and name in self._dedup_views
                            and all(type(v) is int for v in rows[0])):
                        # The one-row sniff keeps float-valued traffic
                        # (e.g. SSSP distances, which essentially never
                        # collide exactly) from paying the hash pass.
                        deduped = list(dict.fromkeys(rows))
                        if len(deduped) != len(rows):
                            metrics.inc("columnar_rows_deduped",
                                        len(rows) - len(deduped))
                            rows = deduped
                    packed = maybe_batch(rows) if use_columnar else rows
                    if isinstance(packed, ColumnBatch):
                        metrics.inc("columnar_batches_encoded")
                        metrics.inc("columnar_batch_rows", len(packed))
                    rows_by_view[name] = packed
            tasks.append(StageTask(
                p, self._stage_inputs(incoming, p), _remote_task_stub,
                preferred_worker=self.cluster.worker_for_partition(p),
                payload=("iterate", sid, p, rows_by_view)))
        results = self.cluster.run_stage("fixpoint-shufflemap", tasks)
        self._release_consumed_shuffles(incoming)

        d_total = 0
        delta_by_view: dict[str, int] = {name: 0 for name in view_names}
        outputs: dict[str, list[tuple[int, dict]]] = defaultdict(list)
        for result in results:
            d_count, per_view, d_by_view = result.output
            d_total += d_count
            for name, count in d_by_view.items():
                delta_by_view[name] += count
            for view_name, buckets in per_view.items():
                # Workers may reply with columnar buckets; decode them
                # here so the exchange (and every simulated shuffle
                # metric) sees the exact row lists of the row path.
                decoded = None
                for pid, bucket in buckets.items():
                    if isinstance(bucket, ColumnBatch):
                        metrics.inc("columnar_batches_decoded")
                        if decoded is None:
                            decoded = dict(buckets)
                        decoded[pid] = bucket.to_rows()
                outputs[view_name].append(
                    (result.worker, buckets if decoded is None else decoded))
        self._remote_delta_by_view = delta_by_view
        return self._exchange_prebucketed(outputs), d_total

    def _iterate_combined(self, incoming: dict[str, Dataset],
                          naive: bool) -> tuple[dict[str, Dataset], int]:
        """Algorithm 6: one ShuffleMap stage per iteration.

        Returns the next iteration's incoming shuffled datasets together
        with the total post-merge delta size ``|D|`` across views and
        partitions, which is what the fixpoint loop keys termination off.
        """
        if self._remote:
            return self._iterate_remote(incoming)
        view_names = list(self.planned.views)

        def task_fn(partition):
            def run(*_input_rows):
                d_count = 0
                for name in view_names:
                    rows = incoming[name].partitions[partition].rows
                    fresh = self._merge_into_state(name, partition, rows)
                    self._current_d[name][partition] = fresh
                    d_count += len(fresh)
                if d_count == 0 and not naive:
                    return 0, {}
                buckets = self._evaluate_terms(partition, naive)
                return d_count, buckets
            return run

        tasks = []
        for p in range(self.n):
            snapshot, restore = self._state_snapshot_hooks(p)
            tasks.append(StageTask(
                p, self._stage_inputs(incoming, p), task_fn(p),
                preferred_worker=self.cluster.worker_for_partition(p),
                snapshot=snapshot, restore=restore, mutating=True))
        results = self.cluster.run_stage("fixpoint-shufflemap", tasks)
        self._release_consumed_shuffles(incoming)

        d_total = 0
        if self._use_kernels:
            # The tasks' buckets are already routed by the target view's
            # partition key: hand them to the exchange as-is instead of
            # flattening and re-routing every row.
            outputs: dict[str, list[tuple[int, dict]]] = defaultdict(list)
            for result in results:
                d_count, per_view = result.output
                d_total += d_count
                for view_name, buckets in per_view.items():
                    outputs[view_name].append((result.worker, buckets))
            return self._exchange_prebucketed(outputs), d_total

        merged: dict[str, dict[int, list[tuple]]] = defaultdict(dict)
        workers: dict[int, int] = {}
        for result in results:
            workers[result.index] = result.worker
            d_count, per_view = result.output
            d_total += d_count
            for view_name, buckets in per_view.items():
                rows: list[tuple] = []
                for bucket_rows in buckets.values():
                    rows.extend(bucket_rows)
                merged[view_name][result.index] = rows
        return self._exchange_outputs(merged, source_workers=workers), d_total

    def _iterate_two_stage(self, incoming: dict[str, Dataset],
                           naive: bool) -> tuple[dict[str, Dataset], int]:
        """Algorithm 4/5: separate Reduce and Map stages per iteration."""
        view_names = list(self.planned.views)

        # Stage 1: Reduce — merge incoming deltas into state, emit D.
        def reduce_fn(partition):
            def run(*_input_rows):
                output = {}
                for name in view_names:
                    rows = incoming[name].partitions[partition].rows
                    output[name] = self._merge_into_state(name, partition, rows)
                return output
            return run

        reduce_tasks = []
        for p in range(self.n):
            snapshot, restore = self._state_snapshot_hooks(p)
            reduce_tasks.append(StageTask(
                p, [incoming[name].partitions[p] for name in view_names],
                reduce_fn(p),
                preferred_worker=self.cluster.worker_for_partition(p),
                snapshot=snapshot, restore=restore, mutating=True))
        reduce_results = self.cluster.run_stage("fixpoint-reduce", reduce_tasks)
        self._release_consumed_shuffles(incoming)

        d_partitions: dict[str, list[Partition]] = {name: [] for name in view_names}
        d_total = 0
        for result in reduce_results:
            for name in view_names:
                rows = result.output[name]
                d_total += len(rows)
                self._current_d[name][result.index] = rows
                d_partitions[name].append(
                    Partition(result.index, rows, result.worker))

        # Stage 2: Map — join D with bases/state, emit shuffle buckets.
        def map_fn(partition):
            def run(*_input_rows):
                return self._evaluate_terms(partition, naive)
            return run

        map_tasks = []
        for p in range(self.n):
            inputs = [d_partitions[name][p] for name in view_names]
            for partitions in self._base_partition_objects.values():
                inputs.append(partitions[p])
            map_tasks.append(StageTask(
                p, inputs, map_fn(p),
                preferred_worker=self.cluster.worker_for_partition(p)))
        map_results = self.cluster.run_stage("fixpoint-map", map_tasks)

        if self._use_kernels:
            outputs: dict[str, list[tuple[int, dict]]] = defaultdict(list)
            for result in map_results:
                for view_name, buckets in result.output.items():
                    outputs[view_name].append((result.worker, buckets))
            return self._exchange_prebucketed(outputs), d_total

        merged: dict[str, dict[int, list[tuple]]] = defaultdict(dict)
        workers: dict[int, int] = {}
        for result in map_results:
            workers[result.index] = result.worker
            for view_name, buckets in result.output.items():
                rows: list[tuple] = []
                for bucket_rows in buckets.values():
                    rows.extend(bucket_rows)
                merged[view_name][result.index] = rows
        return self._exchange_outputs(merged, source_workers=workers), d_total

    # ------------------------------------------------------------------
    # decomposed execution (Section 7.2)
    # ------------------------------------------------------------------

    def _execute_decomposed(self, incoming: dict[str, Dataset]) -> int:
        """Independent per-partition fixpoints; no shuffle, no sync."""
        (view_name, view), = self.planned.views.items()
        terms = self.planned.terms
        splitter = self.splitters[view_name]
        assembler = self.assemblers[view_name]
        global_state = self.states[view_name]
        max_iters = self.config.max_iterations

        def _dedup_fusable(term: CompiledTerm) -> bool:
            """Fused dedup must not read evolving state mid-round: its
            inline adds would be visible where the reference path's
            union defers them to the next round."""
            if term.codegen_dedup_fn is None:
                return False
            for step in term.steps:
                if isinstance(step, TotalizeStep):
                    return False
                if (isinstance(step, HashJoinStep)
                        and step.source in ("state", "delta")):
                    return False
            return True

        fused = (self._use_kernels and isinstance(global_state, SetRDD)
                 and all(_dedup_fusable(t) for t in terms))
        grouped = (self._use_kernels and isinstance(global_state, SetRDD)
                   and all(t.grouped_spec is not None for t in terms))

        def local_grouped_fixpoint(partition):
            """Column-decomposed set fixpoint; the shared
            :func:`run_grouped_fixpoint` does the work."""
            specs = [term.grouped_spec for term in terms]

            def run(delta_rows):
                return run_grouped_fixpoint(
                    specs, self.runtime.broadcast_tables, delta_rows,
                    max_iters)
            return run

        def local_fused_fixpoint(partition):
            """Set-view fast path; the shared :func:`run_fused_fixpoint`
            does the work."""
            dedup_fns = [term.codegen_dedup_fn for term in terms]

            def run(delta_rows):
                return run_fused_fixpoint(
                    dedup_fns, self.runtime.broadcast_tables, delta_rows,
                    max_iters)
            return run

        def local_fixpoint(partition):
            def run(delta_rows):
                local_runtime = TermRuntime()
                local_runtime.broadcast_tables = self.runtime.broadcast_tables
                if isinstance(global_state, SetRDD):
                    local = SetRDD(1)
                else:
                    local = KeyedStateRDD(1, view.aggregate_functions,
                                          use_kernels=self._use_kernels)
                local_runtime.state_rows = (
                    lambda _v, _p: (list(local.partitions[0])
                                    if isinstance(local, SetRDD)
                                    else local.partition_rows(0)))
                local_runtime.state_total = (
                    lambda _v, _p, key: local.partitions[0].get(key))

                delta = list(delta_rows)
                iterations = 0
                while delta:
                    iterations += 1
                    if iterations > max_iters:
                        raise FixpointNotReachedError(
                            "decomposed local fixpoint exceeded budget",
                            iterations - 1)
                    if isinstance(local, SetRDD):
                        fresh = local.union_in_place(0, delta)
                    else:
                        pairs = local.merge(0, [splitter(r) for r in delta])
                        fresh = [assembler(k, v) for k, v in pairs]
                    delta = []
                    for term in terms:
                        if fresh:
                            delta.extend(term.evaluate(fresh, 0, local_runtime))
                return local.partitions[0], iterations
            return run

        make_task_fn = (local_grouped_fixpoint if grouped
                        else local_fused_fixpoint if fused
                        else local_fixpoint)
        if grouped:
            self.cluster.metrics.inc("kernel_grouped_fixpoint_stages")
        elif fused:
            self.cluster.metrics.inc("kernel_fused_fixpoint_stages")
        if self._remote and (grouped or fused):
            # Stateless per-partition fixpoints ship whole: the worker
            # runs the same shared runner over the same delta rows.
            mode = "grouped" if grouped else "fused"
            sid = self._session_id
            tasks = []
            for p in range(self.n):
                delta_rows = list(incoming[view_name].partitions[p].rows)
                if self._use_columnar:
                    # The local-fixpoint runners only iterate their seed
                    # (``set(delta_rows)``), so a batch ships as-is.
                    delta_rows = maybe_batch(delta_rows)
                    if isinstance(delta_rows, ColumnBatch):
                        self.cluster.metrics.inc("columnar_batches_encoded")
                        self.cluster.metrics.inc("columnar_batch_rows",
                                                 len(delta_rows))
                tasks.append(StageTask(
                    p, [incoming[view_name].partitions[p]],
                    _remote_task_stub,
                    preferred_worker=self.cluster.worker_for_partition(p),
                    payload=("decompose", sid, p, mode, delta_rows)))
        else:
            tasks = [
                StageTask(p, [incoming[view_name].partitions[p]],
                          make_task_fn(p),
                          preferred_worker=self.cluster.worker_for_partition(p))
                for p in range(self.n)
            ]
        results = self.cluster.run_stage("fixpoint-decomposed", tasks)
        self._release_consumed_shuffles(incoming)
        iterations = 0
        per_partition: dict[int, int] = {}
        for result in results:
            local_partition, local_iterations = result.output
            global_state.replace_partition(result.index, local_partition)
            per_partition[result.index] = local_iterations
            iterations = max(iterations, local_iterations)
            self.cluster.memory.charge(
                "state", view_name, result.index,
                self.cluster.worker_for_partition(result.index),
                global_state.partition_size_bytes(result.index))
        self.cluster.metrics.inc("iterations", iterations)
        span = self.cluster.tracer.current
        if span is not None:
            # Decomposed fixpoints have no global iteration barrier; record
            # each partition's local iteration count on the enclosing span.
            span.annotate(local_iterations=per_partition)
        return iterations

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def _relations(self) -> dict[str, Relation]:
        out: dict[str, Relation] = {}
        for name, view in self.planned.views.items():
            state = self.states[name]
            if isinstance(state, SetRDD):
                rows = state.collect()
            else:
                rows = state.collect_rows()
            original = view.plan
            if (self.config.evaluation == "stratified"
                    and original.has_aggregates):
                rows = self._apply_stratified_aggregates(original, rows)
            out[original.name] = Relation.from_tuples(
                original.name, original.columns, rows)
        return out

    @staticmethod
    def _apply_stratified_aggregates(view, rows: list[tuple]) -> list[tuple]:
        """The final stratum: group and aggregate after the recursion."""
        group = view.group_positions
        agg_positions = view.aggregate_positions
        functions = [view.aggregates[p] for p in agg_positions]
        grouped: dict[tuple, list] = {}
        for row in rows:
            key = tuple(row[i] for i in group)
            values = [row[p] for p in agg_positions]
            state = grouped.get(key)
            if state is None:
                grouped[key] = values
            else:
                for i, fn in enumerate(functions):
                    state[i] = fn.combine(state[i], values[i])
        out = []
        arity = len(view.columns)
        for key, values in grouped.items():
            row = [None] * arity
            for position, value in zip(group, key):
                row[position] = value
            for position, value in zip(agg_positions, values):
                row[position] = value
            out.append(tuple(row))
        return out

    def _finish(self, iterations: int,
                delta_history: list[int]) -> FixpointResult:
        return FixpointResult(self._relations(), iterations, delta_history)
