"""Rule-based logical optimization (Section 5's "batch of rules").

Three rules run over every rule plan, mirroring the paper's list —
predicate pushdown, filter combination and constant evaluation — plus the
equi-conjunct classification the physical planner needs to pick join keys:

1. **Constant folding** on projections and predicates.
2. **Equi-conjunct extraction**: ``col = col`` conjuncts between two
   different FROM bindings move into the join's equi list (join keys).
3. **Predicate pushdown + combination**: conjuncts touching a single
   non-recursive binding become that scan's filter (ANDed together).
   Pushing *into a recursive scan* is unsound — the delta is produced by
   the fixpoint, not scanned — so single-binding predicates on recursive
   references stay residual (Company Control's ``Tot > 50`` is one).
"""

from __future__ import annotations

from repro.core import ast_nodes as ast
from repro.core.expressions import (
    conjoin,
    fold_constants,
    is_equi_conjunct,
    referenced_bindings,
    split_conjuncts,
)
from repro.core.logical import (
    AnalyzedScript,
    CliquePlan,
    DerivedViewPlan,
    RulePlan,
    ScanNode,
)


def optimize_rule(rule: RulePlan) -> RulePlan:
    """Apply the rule batch to one rule plan, in place, and return it."""
    if rule.join is None:
        return rule

    join = rule.join
    layout = rule.layout

    # 1. constant folding
    rule.projections = tuple(fold_constants(e) for e in rule.projections)
    folded = [fold_constants(e) for e in join.residual]

    # Drop conjuncts folded to literal TRUE; keep literal FALSE (the rule
    # produces nothing, and the executor evaluates it cheaply).
    residual: list[ast.Expr] = []
    for conjunct in folded:
        if isinstance(conjunct, ast.Literal) and conjunct.value is True:
            continue
        residual.append(conjunct)

    # 2. equi-conjunct extraction
    remaining: list[ast.Expr] = []
    for conjunct in residual:
        pair = is_equi_conjunct(conjunct)
        if pair is not None:
            left_binding = layout.binding_of_slot(layout.slot_of(pair[0])).lower()
            right_binding = layout.binding_of_slot(layout.slot_of(pair[1])).lower()
            if left_binding != right_binding:
                join.equi_conjuncts.append(pair)
                continue
        remaining.append(conjunct)

    # 3. pushdown of single-binding predicates into (non-recursive) scans
    scan_filters: dict[str, list[ast.Expr]] = {}
    residual_final: list[ast.Expr] = []
    pushable = {node.binding.lower(): node for node in join.inputs
                if isinstance(node, ScanNode)}
    for conjunct in remaining:
        bindings = referenced_bindings(conjunct, layout)
        if len(bindings) == 1:
            (binding,) = bindings
            if binding in pushable:
                scan_filters.setdefault(binding, []).append(conjunct)
                continue
        residual_final.append(conjunct)

    for binding, conjuncts in scan_filters.items():
        scan = pushable[binding]
        existing = [scan.filter] if scan.filter is not None else []
        scan.filter = conjoin(existing + conjuncts)

    join.residual = residual_final
    return rule


def magic_filter_pushdown(analyzed: AnalyzedScript) -> AnalyzedScript:
    """Seed the recursion with the final query's constants where sound.

    A lightweight cousin of magic sets (which Section 2 notes "require
    simple extensions" under aggregates): when the outer SELECT filters a
    recursive view on ``column = literal`` and that column's value passes
    *unchanged from the delta* through every recursive rule (the
    decomposability condition of Section 7.2), then facts with any other
    value in that column can never contribute to the answer — so the
    filter may be copied onto the view's base rules, shrinking the whole
    fixpoint.  Classic win: ``SELECT ... FROM tc WHERE Src = 5`` explores
    one source's closure instead of all of them.
    """
    from repro.core.decompose import preserved_positions

    cliques = {view.name.lower(): (unit, view)
               for unit in analyzed.units if isinstance(unit, CliquePlan)
               for view in unit.views}

    final = analyzed.final
    if len(final.from_tables) != 1:
        return analyzed
    table_ref = final.from_tables[0]
    target = cliques.get(table_ref.name.lower())
    if target is None:
        return analyzed
    unit, view = target
    if len(unit.views) != 1 or not view.recursive_rules:
        return analyzed

    # Positions preserved from the delta by every recursive rule.
    preserved: set[int] | None = None
    for rule in view.recursive_rules:
        positions = preserved_positions(view, rule)
        preserved = positions if preserved is None else preserved & positions
    if not preserved:
        return analyzed

    binding = table_ref.binding.lower()
    column_positions = {c.lower(): i for i, c in enumerate(view.columns)}

    for conjunct in split_conjuncts(final.where):
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            continue
        sides = (conjunct.left, conjunct.right)
        column = next((s for s in sides if isinstance(s, ast.ColumnRef)
                       and (s.table is None or s.table.lower() == binding)),
                      None)
        literal = next((s for s in sides if isinstance(s, ast.Literal)), None)
        if column is None or literal is None:
            continue
        position = column_positions.get(column.name.lower())
        if position is None or position not in preserved:
            continue
        # Copy ``head[position] = literal`` into every base rule.
        for rule in view.base_rules:
            head_expr = rule.projections[position]
            if rule.join is None:
                rule.constant_rows = tuple(
                    row for row in rule.constant_rows
                    if row[position] == literal.value)
            else:
                rule.join.residual.append(
                    ast.BinaryOp("=", head_expr, literal))
                optimize_rule(rule)  # re-push the new conjunct
    return analyzed


def optimize(analyzed: AnalyzedScript,
             magic_filters: bool = True) -> AnalyzedScript:
    """Optimize every rule of every clique; derived views are left to the
    local executor, which performs its own pushdown during join ordering."""
    for unit in analyzed.units:
        if isinstance(unit, CliquePlan):
            for view in unit.views:
                for rule in view.base_rules + view.recursive_rules:
                    optimize_rule(rule)
    if magic_filters:
        magic_filter_pushdown(analyzed)
    return analyzed
