"""Durable fixpoint checkpoints: the store, the manifest, the writer.

Spark survives multi-hour recursive jobs because lineage plus periodic
checkpointing make executor *and* driver loss recoverable; PR 2 covered
worker loss (in-memory pre-stage snapshots), but a driver crash still
lost every iteration.  This module persists the compact thing worth
saving — exactly the semi-naive working set: the *all* relations, the
next iteration's delta, the iteration counter, and the clock/counter/RNG
state needed to continue bit-exactly (see "Scaling-Up In-Memory Datalog
Processing": all + delta per relation is the entire live state of
semi-naive evaluation).

Layout under ``ExecutionConfig.checkpoint_dir``::

    <dir>/<query_id>/manifest.json          # status + in-flight pointer
    <dir>/<query_id>/unit-<u>-iter-<k>.ckpt # sha256-guarded pickle blob

Only the *latest* iteration blob per unit is kept (each save deletes its
predecessor after the atomic rename lands), so disk stays bounded by one
working set.  The manifest is JSON with its own content hash; blobs go
through :func:`repro.engine.serialization.dump_blob` /
:func:`~repro.engine.serialization.load_blob`.

Resume protocol (:meth:`repro.RaSQLContext.resume`): load the manifest,
check the catalog fingerprint, re-run the script's units *before* the
in-flight one deterministically from scratch (they are cheap derived
views or already-completed cliques), then restore the in-flight clique's
states/delta/clock from the blob and continue the semi-naive loop from
iteration k+1.  A crash before the first checkpoint resumes from
scratch.  Completion marks the manifest ``complete`` and deletes the
iteration blobs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os

from repro.engine.serialization import dump_blob, load_blob, rows_checksum
from repro.errors import CheckpointError, CheckpointNotFoundError

__all__ = ["CheckpointStore", "CliqueCheckpointer", "catalog_fingerprint",
           "make_query_id"]


def make_query_id(sql: str) -> str:
    """Deterministic query id from the statement text.

    Whitespace-insensitive (the serving layer's normalized key is
    whitespace-insensitive too), so the same query resubmitted after a
    crash maps to the same checkpoint directory without any side channel.
    """
    canonical = " ".join(sql.split())
    return "q" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def catalog_fingerprint(catalog) -> str:
    """Content fingerprint of every base relation in *catalog*.

    A checkpoint is only resumable against the data it was cut over —
    semi-naive state bakes the base facts in.  Order-insensitive per
    relation (``rows_checksum``), name-sorted across relations.
    """
    digest = hashlib.sha256()
    for name in sorted(catalog.names()):
        relation = catalog.get(name)
        digest.update(name.lower().encode("utf-8"))
        digest.update(repr(tuple(relation.columns)).encode("utf-8"))
        digest.update(str(len(relation.rows)).encode("ascii"))
        digest.update(str(rows_checksum(relation.rows)).encode("ascii"))
    return digest.hexdigest()[:16]


class CheckpointStore:
    """Filesystem-backed store of per-query checkpoint state."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        try:
            os.makedirs(self.root, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint dir {self.root!r}: {exc}") from exc
        #: In-memory manifest cache, so per-iteration saves do not re-read
        #: the manifest file they themselves just wrote.
        self._manifests: dict[str, dict] = {}

    # -- paths ---------------------------------------------------------

    def _query_dir(self, query_id: str) -> str:
        return os.path.join(self.root, query_id)

    def _manifest_path(self, query_id: str) -> str:
        return os.path.join(self._query_dir(query_id), "manifest.json")

    def blob_path(self, query_id: str, filename: str) -> str:
        return os.path.join(self._query_dir(query_id), filename)

    # -- manifest ------------------------------------------------------

    def _write_manifest(self, query_id: str, manifest: dict) -> None:
        body = json.dumps(manifest, sort_keys=True)
        wrapped = json.dumps(
            {"crc": hashlib.sha256(body.encode("utf-8")).hexdigest()[:16],
             "manifest": manifest},
            sort_keys=True, indent=1)
        path = self._manifest_path(query_id)
        tmp = path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(wrapped)
            os.replace(tmp, path)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write checkpoint manifest {path!r}: {exc}") from exc
        self._manifests[query_id] = manifest

    def load_manifest(self, query_id: str) -> dict:
        path = self._manifest_path(query_id)
        if not os.path.exists(path):
            raise CheckpointNotFoundError(
                f"no checkpoint manifest for query id {query_id!r} "
                f"under {self.root!r}")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                wrapped = json.load(fh)
            manifest = wrapped["manifest"]
            body = json.dumps(manifest, sort_keys=True)
            crc = hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint manifest {path!r}: {exc}") from exc
        if crc != wrapped.get("crc"):
            raise CheckpointError(
                f"checkpoint manifest {path!r} failed its integrity check")
        self._manifests[query_id] = manifest
        return manifest

    def has_resumable(self, query_id: str) -> bool:
        try:
            manifest = self.load_manifest(query_id)
        except CheckpointError:
            return False
        return manifest.get("status") == "in-progress"

    # -- lifecycle -----------------------------------------------------

    def begin(self, query_id: str, *, sql: str, config,
              fingerprint: str) -> dict:
        """Open (or re-open, on resume) a query's checkpoint directory."""
        try:
            os.makedirs(self._query_dir(query_id), exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint dir for {query_id!r}: {exc}") from exc
        manifest = {
            "query_id": query_id,
            "sql": sql,
            "config": dataclasses.asdict(config),
            "catalog_fingerprint": fingerprint,
            "status": "in-progress",
            "in_flight": None,
        }
        self._write_manifest(query_id, manifest)
        return manifest

    def save_iteration(self, query_id: str, unit: int, iteration: int,
                       payload: dict) -> str:
        """Persist one iteration blob and advance the in-flight pointer.

        Write order is crash-safe: new blob lands atomically, manifest
        points at it, *then* the predecessor blob is deleted — a crash at
        any step leaves a loadable (blob, manifest) pair.
        """
        manifest = self._manifests.get(query_id)
        if manifest is None:
            manifest = self.load_manifest(query_id)
        filename = f"unit-{unit}-iter-{iteration}.ckpt"
        dump_blob(self.blob_path(query_id, filename), payload)
        previous = manifest.get("in_flight")
        manifest["in_flight"] = {"unit": unit, "iteration": iteration,
                                 "file": filename}
        self._write_manifest(query_id, manifest)
        if previous and previous["file"] != filename:
            try:
                os.remove(self.blob_path(query_id, previous["file"]))
            except OSError:
                pass  # stale blob; harmless, next complete() sweeps it
        return filename

    def load_resume_state(self, manifest: dict) -> dict | None:
        """The in-flight unit + verified payload, or None (resume from scratch)."""
        in_flight = manifest.get("in_flight")
        if not in_flight:
            return None
        payload = load_blob(
            self.blob_path(manifest["query_id"], in_flight["file"]))
        if payload.get("iteration") != in_flight["iteration"]:
            raise CheckpointError(
                f"checkpoint blob {in_flight['file']!r} disagrees with the "
                f"manifest about its iteration")
        return {"unit": in_flight["unit"], "payload": payload}

    def mark_complete(self, query_id: str) -> None:
        """Record success and garbage-collect the iteration blobs."""
        manifest = self._manifests.get(query_id)
        if manifest is None:
            try:
                manifest = self.load_manifest(query_id)
            except CheckpointNotFoundError:
                return
        manifest["status"] = "complete"
        manifest["in_flight"] = None
        self._write_manifest(query_id, manifest)
        query_dir = self._query_dir(query_id)
        try:
            entries = os.listdir(query_dir)
        except OSError:
            return
        for entry in entries:
            if entry.endswith(".ckpt") or entry.endswith(".ckpt.tmp"):
                try:
                    os.remove(os.path.join(query_dir, entry))
                except OSError:
                    pass


class CliqueCheckpointer:
    """Per-clique checkpoint writer handed to the fixpoint operator.

    The operator builds the payload (it owns the state structures); this
    object owns cadence (``due``), cost accounting (a checkpoint write is
    charged to the simulated spill-disk tier under the ``"checkpoint"``
    label *before* the clock snapshot enters the payload, so a resumed
    run continues from exactly the clock an uninterrupted run would
    show), and persistence.
    """

    def __init__(self, store: CheckpointStore, query_id: str, unit: int,
                 interval: int, metrics, cost_model):
        self.store = store
        self.query_id = query_id
        self.unit = unit
        self.interval = interval
        self.metrics = metrics
        self.cost_model = cost_model

    def due(self, iteration: int) -> bool:
        return self.interval > 0 and iteration % self.interval == 0

    def save(self, iteration: int, payload: dict, est_bytes: int) -> None:
        metrics = self.metrics
        metrics.advance(self.cost_model.spill_seconds(est_bytes),
                        label="checkpoint")
        metrics.inc("checkpoint_writes")
        metrics.inc("checkpoint_bytes", est_bytes)
        payload["sim_time"] = metrics.sim_time
        payload["counters"] = dict(metrics.counters)
        self.store.save_iteration(self.query_id, self.unit, iteration, payload)

    def charge_restore(self, est_bytes: int) -> None:
        """Account the resume-time read of a checkpoint blob."""
        metrics = self.metrics
        metrics.advance(self.cost_model.spill_seconds(est_bytes),
                        label="checkpoint")
        metrics.inc("checkpoint_restores")
        metrics.inc("checkpoint_restore_bytes", est_bytes)
