"""Decomposable-plan analysis (Section 7.2).

A recursive plan is *decomposable* when a well-chosen partitioning lets the
join output preserve the input delta's partitioning, so each partition can
iterate to its own fixpoint with no shuffle and no global synchronization.

The analysis finds, per view, the head positions whose value is copied
verbatim from the same column of the delta reference in *every* recursive
rule.  Partitioning on (a subset of) those positions makes the output land
in the producing partition.  Classic positive case: linear TC partitioned
on ``X`` (``tc(X, Z) <- tc(X, Y), edge(Y, Z)``); APSP similarly preserves
``Src``.  REACH/SSSP/CC do not qualify — their head key comes from the base
relation side.

Additional requirements enforced here:

- single-view cliques only (mutual recursion synchronizes by definition);
- every recursive rule references the recursive view exactly once;
- for aggregate views the preserved key must consist of group-by columns
  (so a group never migrates between partitions).
"""

from __future__ import annotations

from repro.core import ast_nodes as ast
from repro.core.logical import CliquePlan, RecursiveScanNode, RulePlan, ViewPlan


def preserved_positions(view: ViewPlan, rule: RulePlan) -> set[int]:
    """Head positions whose value passes through from the delta unchanged."""
    rec_positions = rule.recursive_inputs()
    if len(rec_positions) != 1 or rule.layout is None:
        return set()
    delta_node = rule.join.inputs[rec_positions[0]]
    assert isinstance(delta_node, RecursiveScanNode)
    delta_binding = delta_node.binding.lower()
    delta_offset = rule.layout.offsets[delta_binding]

    preserved: set[int] = set()
    for position, expr in enumerate(rule.projections):
        if not isinstance(expr, ast.ColumnRef):
            continue
        slot = rule.layout.slot_of(expr)
        if slot == delta_offset + position:
            preserved.add(position)
    return preserved


def decompose_keys(clique: CliquePlan) -> dict[str, tuple[int, ...]] | None:
    """The per-view preserved partition key, or ``None`` if not decomposable."""
    if len(clique.views) != 1:
        return None
    view = clique.views[0]
    if not view.recursive_rules:
        return None

    common: set[int] | None = None
    for rule in view.recursive_rules:
        if len(rule.recursive_inputs()) != 1:
            return None
        positions = preserved_positions(view, rule)
        common = positions if common is None else (common & positions)
        if not common:
            return None

    if view.has_aggregates:
        common &= set(view.group_positions)
        if not common:
            return None
    return {view.name.lower(): tuple(sorted(common))}
