"""Recursive-descent parser for the RaSQL dialect.

Produces the AST of :mod:`repro.core.ast_nodes`.  The grammar is SQL:99's
recursive CTE subset used throughout the paper, with the aggregate-in-head
extension::

    script      := statement (';' statement)* ';'?
    statement   := create_view | with_query | select
    create_view := CREATE VIEW name ['(' idents ')'] AS '(' select ')'
    with_query  := WITH view_def (',' view_def)* select
    view_def    := [RECURSIVE] name '(' colspec, ... ')' AS
                   '(' select ')' (UNION '(' select ')')*
    colspec     := name | aggname '(' ')' AS name

Expression precedence (loosest first): OR, AND, NOT, comparisons,
additive, multiplicative, unary minus.
"""

from __future__ import annotations

from repro.core import ast_nodes as ast
from repro.core.lexer import Token, tokenize
from repro.errors import ParseError

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}

#: Keywords that SQL practice (and the paper's Company-Control query, which
#: names a column ``By``) allows as ordinary identifiers.
_SOFT_KEYWORDS = {"BY", "ALL", "VIEW", "ORDER", "LIMIT", "ASC", "DESC"}


class Parser:
    """A cursor over the token list with one-token lookahead."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------------
    # cursor helpers
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self.pos += 1
        return token

    def check(self, kind: str, value: str | None = None) -> bool:
        return self.current.matches(kind, value)

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        if self.check(kind, value):
            return self.advance()
        want = value or kind
        got = self.current.value or self.current.kind
        raise ParseError(f"expected {want!r}, found {got!r}",
                         self.current.position, self.current.line,
                         self.current.column)

    def check_name(self) -> bool:
        """Is the current token usable as an identifier (incl. soft keywords)?"""
        if self.check("IDENT"):
            return True
        return (self.current.kind == "KEYWORD"
                and self.current.value.upper() in _SOFT_KEYWORDS)

    def expect_name(self) -> str:
        """Consume an identifier, allowing soft keywords like ``By``."""
        if self.check_name():
            return self.advance().value
        got = self.current.value or self.current.kind
        raise ParseError(f"expected an identifier, found {got!r}",
                         self.current.position, self.current.line,
                         self.current.column)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def parse_script(self) -> ast.Script:
        statements = []
        while not self.check("EOF"):
            statements.append(self.parse_statement())
            while self.accept("OP", ";"):
                pass
        if not statements:
            raise ParseError("empty query", 0, 1, 1)
        return ast.Script(tuple(statements))

    def parse_statement(self):
        if self.check("KEYWORD", "CREATE"):
            return self.parse_create_view()
        if self.check("KEYWORD", "WITH"):
            return self.parse_with_query()
        if self.check("KEYWORD", "SELECT"):
            return self.parse_select()
        token = self.current
        raise ParseError(f"expected a statement, found {token.value!r}",
                         token.position, token.line, token.column)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def parse_create_view(self) -> ast.CreateView:
        self.expect("KEYWORD", "CREATE")
        self.expect("KEYWORD", "VIEW")
        name = self.expect_name()
        columns: list[str] = []
        if self.accept("OP", "("):
            columns.append(self.expect_name())
            while self.accept("OP", ","):
                columns.append(self.expect_name())
            self.expect("OP", ")")
        self.expect("KEYWORD", "AS")
        self.expect("OP", "(")
        query = self.parse_select()
        self.expect("OP", ")")
        return ast.CreateView(name, tuple(columns), query)

    def parse_with_query(self) -> ast.WithQuery:
        self.expect("KEYWORD", "WITH")
        views = [self.parse_view_def()]
        while self.accept("OP", ","):
            views.append(self.parse_view_def())
        final = self.parse_select()
        return ast.WithQuery(tuple(views), final)

    def parse_view_def(self) -> ast.ViewDef:
        recursive = bool(self.accept("KEYWORD", "RECURSIVE"))
        name = self.expect_name()
        self.expect("OP", "(")
        columns = [self.parse_column_spec()]
        while self.accept("OP", ","):
            columns.append(self.parse_column_spec())
        self.expect("OP", ")")
        self.expect("KEYWORD", "AS")
        branches = [self.parse_parenthesized_select()]
        while self.accept("KEYWORD", "UNION"):
            self.accept("KEYWORD", "ALL")
            branches.append(self.parse_parenthesized_select())
        return ast.ViewDef(name, tuple(columns), tuple(branches), recursive)

    def parse_column_spec(self) -> ast.ColumnSpec:
        first = self.expect_name()
        if self.check("OP", "("):
            # Aggregate head column: ``min() AS Cost``.
            self.expect("OP", "(")
            self.expect("OP", ")")
            self.expect("KEYWORD", "AS")
            column = self.expect_name()
            return ast.ColumnSpec(column, first.lower())
        return ast.ColumnSpec(first)

    def parse_parenthesized_select(self) -> ast.SelectQuery:
        self.expect("OP", "(")
        query = self.parse_select()
        self.expect("OP", ")")
        return query

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def parse_select(self) -> ast.SelectQuery:
        self.expect("KEYWORD", "SELECT")
        distinct = bool(self.accept("KEYWORD", "DISTINCT"))
        items = [self.parse_select_item()]
        while self.accept("OP", ","):
            items.append(self.parse_select_item())

        from_tables: list[ast.TableRef] = []
        if self.accept("KEYWORD", "FROM"):
            from_tables.append(self.parse_table_ref())
            while self.accept("OP", ","):
                from_tables.append(self.parse_table_ref())

        where = None
        if self.accept("KEYWORD", "WHERE"):
            where = self.parse_expr()

        group_by: list[ast.Expr] = []
        if self.check("KEYWORD", "GROUP"):
            self.advance()
            self.expect("KEYWORD", "BY")
            group_by.append(self.parse_expr())
            while self.accept("OP", ","):
                group_by.append(self.parse_expr())

        having = None
        if self.accept("KEYWORD", "HAVING"):
            having = self.parse_expr()

        order_by: list[ast.OrderItem] = []
        if (self.check("KEYWORD", "ORDER")
                and self.peek().matches("KEYWORD", "BY")):
            self.advance()
            self.advance()
            order_by.append(self.parse_order_item())
            while self.accept("OP", ","):
                order_by.append(self.parse_order_item())

        limit = None
        if (self.check("KEYWORD", "LIMIT")
                and self.peek().kind == "NUMBER"):
            self.advance()
            token = self.expect("NUMBER")
            if "." in token.value:
                raise ParseError("LIMIT takes an integer", token.position,
                                 token.line, token.column)
            limit = int(token.value)

        return ast.SelectQuery(tuple(items), tuple(from_tables), where,
                               tuple(group_by), having, distinct,
                               tuple(order_by), limit)

    def parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept("KEYWORD", "DESC"):
            descending = True
        else:
            self.accept("KEYWORD", "ASC")
        return ast.OrderItem(expr, descending)

    def parse_select_item(self) -> ast.SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept("KEYWORD", "AS"):
            alias = self.expect_name()
        elif self.check("IDENT"):
            alias = self.advance().value
        return ast.SelectItem(expr, alias)

    def parse_table_ref(self) -> ast.TableRef:
        name = self.expect_name()
        alias = None
        if self.accept("KEYWORD", "AS"):
            alias = self.expect_name()
        elif self.check("IDENT"):
            alias = self.advance().value
        return ast.TableRef(name, alias)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.accept("KEYWORD", "OR"):
            left = ast.BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.accept("KEYWORD", "AND"):
            left = ast.BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.accept("KEYWORD", "NOT"):
            return ast.UnaryOp("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        if self.current.kind == "OP" and self.current.value in _COMPARISON_OPS:
            op = self.advance().value
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self.parse_additive())
        negated = bool(self.accept("KEYWORD", "NOT"))
        if self.accept("KEYWORD", "BETWEEN"):
            # Desugar: x BETWEEN a AND b  ->  a <= x AND x <= b.
            low = self.parse_additive()
            self.expect("KEYWORD", "AND")
            high = self.parse_additive()
            expr = ast.BinaryOp("AND", ast.BinaryOp("<=", low, left),
                                ast.BinaryOp("<=", left, high))
            return ast.UnaryOp("NOT", expr) if negated else expr
        if self.accept("KEYWORD", "IN"):
            # Desugar: x IN (a, b)  ->  x = a OR x = b.
            self.expect("OP", "(")
            candidates = [self.parse_expr()]
            while self.accept("OP", ","):
                candidates.append(self.parse_expr())
            self.expect("OP", ")")
            expr = ast.BinaryOp("=", left, candidates[0])
            for candidate in candidates[1:]:
                expr = ast.BinaryOp("OR", expr,
                                    ast.BinaryOp("=", left, candidate))
            return ast.UnaryOp("NOT", expr) if negated else expr
        if negated:
            token = self.current
            raise ParseError("expected BETWEEN or IN after NOT here",
                             token.position, token.line, token.column)
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while self.current.kind == "OP" and self.current.value in ("+", "-"):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while self.current.kind == "OP" and self.current.value in ("*", "/"):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> ast.Expr:
        if self.accept("OP", "-"):
            return ast.UnaryOp("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        token = self.current

        if token.kind == "NUMBER":
            self.advance()
            text = token.value
            value = float(text) if "." in text else int(text)
            return ast.Literal(value)
        if token.kind == "STRING":
            self.advance()
            return ast.Literal(token.value)
        if token.matches("KEYWORD", "NULL"):
            self.advance()
            return ast.Literal(None)
        if token.matches("KEYWORD", "TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.matches("KEYWORD", "FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.matches("KEYWORD", "CASE"):
            self.advance()
            whens = []
            while self.accept("KEYWORD", "WHEN"):
                condition = self.parse_expr()
                self.expect("KEYWORD", "THEN")
                whens.append((condition, self.parse_expr()))
            if not whens:
                raise ParseError("CASE requires at least one WHEN",
                                 token.position, token.line, token.column)
            default = None
            if self.accept("KEYWORD", "ELSE"):
                default = self.parse_expr()
            self.expect("KEYWORD", "END")
            return ast.Case(tuple(whens), default)
        if token.matches("OP", "("):
            self.advance()
            expr = self.parse_expr()
            self.expect("OP", ")")
            return expr
        if token.matches("OP", "*"):
            self.advance()
            return ast.Star()

        if token.kind == "IDENT" or (token.kind == "KEYWORD"
                                      and token.value.upper() in _SOFT_KEYWORDS):
            self.advance()
            # function call
            if self.check("OP", "("):
                self.advance()
                distinct = bool(self.accept("KEYWORD", "DISTINCT"))
                args: list[ast.Expr] = []
                if not self.check("OP", ")"):
                    args.append(self.parse_expr())
                    while self.accept("OP", ","):
                        args.append(self.parse_expr())
                self.expect("OP", ")")
                return ast.FunctionCall(token.value.lower(), tuple(args), distinct)
            # qualified column
            if self.check("OP", "."):
                self.advance()
                column = self.expect_name()
                return ast.ColumnRef(column, token.value)
            return ast.ColumnRef(token.value)

        raise ParseError(f"unexpected token {token.value or token.kind!r}",
                         token.position, token.line, token.column)


def parse(text: str) -> ast.Script:
    """Parse a RaSQL script (one or more statements) into an AST."""
    return Parser(text).parse_script()


def parse_query(text: str):
    """Parse a script and return its single statement (convenience)."""
    script = parse(text)
    if len(script.statements) != 1:
        raise ParseError("expected exactly one statement")
    return script.statements[0]
