"""PreM auto-validation (Section 3 and Appendix G).

A constraint γ is *pre-mappable* (PreM) to the rule transformation T when

    γ(T(I)) = γ(T(γ(I)))

for the states I arising during the fixpoint.  When PreM holds, pushing the
aggregate into the recursion (Q2) is equivalent to the stratified program
(Q1), and evaluates far faster.  Two tools are provided, mirroring the
paper's GPtest:

- :func:`prem_checking_query` — the Appendix G source rewrite: an
  un-aggregated twin view ``all_<name>`` drives the recursion, the original
  view re-derives from the twin, so the query computes γ(T(I)) while the
  original computes γ(T(γ(I))).
- :func:`check_prem` — the step-by-step validator: it runs the
  un-aggregated fixpoint locally and tests the PreM equation at every
  step, reporting the first counterexample (group key and the two
  disagreeing aggregate values).

The validator is a *testing* tool, exactly as the paper frames it: passing
on one dataset is evidence, not proof; proofs use the techniques of
Zaniolo et al. [63].
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import ast_nodes as ast
from repro.core.analyzer import analyze
from repro.core.catalog import Catalog
from repro.core.config import ExecutionConfig
from repro.core.parser import parse
from repro.core.physical import TermRuntime
from repro.core.planner import plan_clique
from repro.errors import AnalysisError, PreMViolationError


# ---------------------------------------------------------------------------
# Appendix G rewrite
# ---------------------------------------------------------------------------


def _rename_references(query: ast.SelectQuery, old: str,
                       new: str) -> ast.SelectQuery:
    """Rewrite FROM references (and their qualified column refs) to a new
    view name, preserving aliases where present."""
    replacements: dict[str, str] = {}
    new_tables = []
    for table_ref in query.from_tables:
        if table_ref.name.lower() == old.lower():
            if table_ref.alias:
                new_tables.append(ast.TableRef(new, table_ref.alias))
            else:
                new_tables.append(ast.TableRef(new))
                replacements[table_ref.name.lower()] = new
        else:
            new_tables.append(table_ref)

    def rewrite(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.ColumnRef) and expr.table:
            target = replacements.get(expr.table.lower())
            if target:
                return ast.ColumnRef(expr.name, target)
            return expr
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, ast.FunctionCall):
            return ast.FunctionCall(expr.name,
                                    tuple(rewrite(a) for a in expr.args),
                                    expr.distinct)
        return expr

    return ast.SelectQuery(
        items=tuple(ast.SelectItem(rewrite(i.expr), i.alias)
                    for i in query.items),
        from_tables=tuple(new_tables),
        where=rewrite(query.where) if query.where is not None else None,
        group_by=tuple(rewrite(e) for e in query.group_by),
        having=rewrite(query.having) if query.having is not None else None,
        distinct=query.distinct,
    )


def prem_checking_query(query: str) -> str:
    """Rewrite a RaSQL query into its PreM-checking version (Appendix G).

    Requires a single recursive view with at least one aggregate column.
    The twin view computes the un-aggregated recursion; the original view
    keeps its aggregate head but re-derives from the twin, so the two
    evaluations compute γ(T(γ(I))) and γ(T(I)) respectively.
    """
    script = parse(query)
    with_query = None
    prefix: list[ast.Statement] = []
    for statement in script.statements:
        if isinstance(statement, ast.WithQuery):
            with_query = statement
        else:
            prefix.append(statement)
    if with_query is None:
        raise AnalysisError("PreM checking requires a WITH query")

    aggregated = [v for v in with_query.views if v.has_aggregates]
    if len(aggregated) != 1:
        raise AnalysisError(
            "PreM checking supports exactly one aggregated recursive view "
            f"(found {len(aggregated)})")
    view = aggregated[0]
    twin_name = f"all_{view.name}"

    twin_columns = tuple(ast.ColumnSpec(c.name) for c in view.columns)
    twin_branches = tuple(
        _rename_references(branch, view.name, twin_name)
        for branch in view.branches)
    twin = ast.ViewDef(twin_name, twin_columns, twin_branches, recursive=True)

    checked_branches = []
    for branch in view.branches:
        references_self = any(
            t.name.lower() == view.name.lower() for t in branch.from_tables)
        if references_self:
            checked_branches.append(
                _rename_references(branch, view.name, twin_name))
        else:
            checked_branches.append(branch)
    checked = ast.ViewDef(view.name, view.columns, tuple(checked_branches),
                          recursive=True)

    other_views = tuple(v for v in with_query.views if v is not view)
    rewritten = ast.WithQuery((twin, checked) + other_views,
                              with_query.final)
    statements = tuple(prefix) + (rewritten,)
    return ast.Script(statements).to_sql()


# ---------------------------------------------------------------------------
# step-by-step validation
# ---------------------------------------------------------------------------


@dataclass
class StepTrace:
    """One fixpoint step of the GPtest-style dual execution."""

    step: int
    unaggregated_facts: int
    aggregated_groups: int
    matched: bool


@dataclass
class PreMReport:
    """Outcome of a step-by-step PreM check."""

    holds: bool
    steps_checked: int
    reached_fixpoint: bool
    failed_step: int | None = None
    counterexample: dict = field(default_factory=dict)
    trace: list[StepTrace] = field(default_factory=list)

    def __str__(self) -> str:
        if self.holds:
            suffix = ("up to the fixpoint" if self.reached_fixpoint
                      else f"for {self.steps_checked} steps (budget reached)")
            return f"PreM held {suffix}"
        return (f"PreM VIOLATED at step {self.failed_step}: "
                f"{self.counterexample}")

    def format_trace(self) -> str:
        """Render the step-by-step table a GPtest user would read."""
        lines = ["step  facts(T^i)  groups(gamma)  PreM"]
        for entry in self.trace:
            lines.append(f"{entry.step:>4}  {entry.unaggregated_facts:>10}  "
                         f"{entry.aggregated_groups:>13}  "
                         f"{'ok' if entry.matched else 'VIOLATED'}")
        return "\n".join(lines)


def _gamma(rows, group_positions, agg_positions, functions):
    """Apply the aggregate constraint γ to a set of head rows."""
    grouped: dict[tuple, list] = {}
    for row in rows:
        key = tuple(row[i] for i in group_positions)
        values = [fn.normalize(row[p])
                  for p, fn in zip(agg_positions, functions)]
        state = grouped.get(key)
        if state is None:
            grouped[key] = values
        else:
            for i, fn in enumerate(functions):
                state[i] = fn.combine(state[i], values[i])
    out = set()
    arity = len(group_positions) + len(agg_positions)
    for key, values in grouped.items():
        row = [None] * arity
        for position, value in zip(group_positions, key):
            row[position] = value
        for position, value in zip(agg_positions, values):
            row[position] = value
        out.add(tuple(row))
    return out


def check_prem(query: str, tables: dict[str, tuple[list[str], list]],
               max_steps: int = 25, raise_on_violation: bool = False
               ) -> PreMReport:
    """Validate PreM step by step on concrete data (the GPtest workflow).

    ``tables`` maps base-table name to ``(columns, rows)``.  The
    un-aggregated state ``U`` evolves by naive fixpoint; at every step the
    equation γ(T(U)) = γ(T(γ(U))) is tested.  For non-terminating
    un-aggregated recursions (cyclic SSSP) the check runs for
    ``max_steps`` steps — exactly the "test, don't prove" stance of
    Appendix G.
    """
    catalog = Catalog()
    for name, (columns, rows) in tables.items():
        catalog.register(name, columns, rows)
    from repro.core.optimizer import optimize

    analyzed = optimize(analyze(parse(query), catalog))
    cliques = analyzed.cliques()
    aggregated = [c for c in cliques
                  if len(c.views) == 1 and c.views[0].has_aggregates]
    if len(aggregated) != 1:
        raise AnalysisError(
            "step-wise PreM checking requires exactly one single-view "
            "aggregated clique")
    clique = aggregated[0]
    view = clique.views[0]

    # Evaluate with a local single-partition plan, all bases broadcast:
    # T(I) is then one pass over the compiled terms.
    config = ExecutionConfig(broadcast_bases=True, decomposed_plans=False,
                             codegen=False, evaluation="stratified")
    planned = plan_clique(clique, config)

    runtime = TermRuntime()
    from repro.core.physical import pad_row
    from repro.engine.joins import build_hash_table
    from repro.core.physical import make_slots_key

    for plan in planned.base_plans:
        relation = catalog.get(plan.relation)
        padded = [pad_row(r, plan.offset, plan.arity) for r in relation.rows]
        if plan.filter is not None:
            padded = [r for r in padded if plan.filter(r)]
        if plan.equi:
            runtime.broadcast_tables[plan.step_id] = build_hash_table(
                padded, make_slots_key(plan.build_slots))
        else:
            runtime.broadcast_tables[plan.step_id] = padded

    group_positions = view.group_positions
    agg_positions = view.aggregate_positions
    functions = [view.aggregates[p] for p in agg_positions]

    def transform(state_rows: set) -> set:
        out = set()
        rows = list(state_rows)
        for term in planned.terms:
            out.update(term.evaluate(rows, 0, runtime))
        return out

    # Base case.
    base: set = set()
    for base_rule in planned.base_rules:
        if base_rule.term is None:
            base.update(base_rule.constant_rows)
        else:
            driving = catalog.get(base_rule.driving_relation)
            base.update(base_rule.term.evaluate(driving.rows, 0, runtime))

    state: set = set(base)
    trace: list[StepTrace] = []
    for step in range(1, max_steps + 1):
        gamma_state = _gamma(state, group_positions, agg_positions, functions)
        lhs = _gamma(transform(state) | base,
                     group_positions, agg_positions, functions)
        rhs = _gamma(transform(gamma_state) | base,
                     group_positions, agg_positions, functions)
        trace.append(StepTrace(step, len(state), len(gamma_state),
                               lhs == rhs))
        if lhs != rhs:
            diff_groups = {}
            lhs_by_key = {tuple(r[i] for i in group_positions): r for r in lhs}
            rhs_by_key = {tuple(r[i] for i in group_positions): r for r in rhs}
            for key in set(lhs_by_key) | set(rhs_by_key):
                if lhs_by_key.get(key) != rhs_by_key.get(key):
                    diff_groups[key] = {
                        "gamma_T_I": lhs_by_key.get(key),
                        "gamma_T_gamma_I": rhs_by_key.get(key),
                    }
                    break
            report = PreMReport(False, step, False, step, diff_groups,
                                trace)
            if raise_on_violation:
                raise PreMViolationError(str(report), step)
            return report

        new_state = state | transform(state)
        if new_state == state:
            return PreMReport(True, step, True, trace=trace)
        state = new_state

    return PreMReport(True, max_steps, False, trace=trace)
