"""Local executor for non-recursive SELECT queries.

This is the "rest of Spark SQL" that the fixpoint operator plugs into: the
final stratum of a RaSQL program (the outer SELECT, e.g. CC's
``count(distinct CmpId)``), CREATE VIEW bodies, non-recursive WITH views,
and the base-case branches of recursive views are all ordinary relational
queries.  It implements select-project-join with greedy hash-join ordering,
GROUP BY / HAVING, the full (non-monotonic) aggregates including ``avg``
and ``distinct``, and SELECT DISTINCT.

It is also reused wholesale by the Spark-SQL-Naive/SN baselines of
Figure 10, which drive recursion as a loop of these ordinary queries.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable

from repro.core import ast_nodes as ast
from repro.core.expressions import (
    Layout,
    compile_expr,
    is_equi_conjunct,
    referenced_bindings,
    split_conjuncts,
)
from repro.errors import AnalysisError
from repro.relation import Relation


def _aggregate_value(call: ast.FunctionCall, rows: list[tuple],
                     layout: Layout) -> object:
    """Evaluate one aggregate call over a group's rows."""
    name = call.name.lower()
    if name == "count" and (not call.args or isinstance(call.args[0], ast.Star)):
        return len(rows)
    if len(call.args) != 1:
        raise AnalysisError(f"aggregate {name!r} takes exactly one argument")
    arg = compile_expr(call.args[0], layout)
    values = [arg(row) for row in rows]
    if call.distinct:
        values = list(set(values))
    if not values:
        return None
    if name == "min":
        return min(values)
    if name == "max":
        return max(values)
    if name == "sum":
        return sum(values)
    if name == "count":
        return len(values)
    if name == "avg":
        return sum(values) / len(values)
    raise AnalysisError(f"unknown aggregate {name!r}")


def _compile_with_aggregates(expr: ast.Expr, layout: Layout,
                             agg_slots: dict[ast.FunctionCall, int]):
    """Compile an expression where aggregate calls read precomputed values.

    Used for SELECT items and HAVING in grouped queries: the returned
    closure takes ``(representative_row, agg_values)``.
    """
    if isinstance(expr, ast.FunctionCall) and expr.name.lower() in ast.AGGREGATE_NAMES:
        slot = agg_slots[expr]
        return lambda row, aggs: aggs[slot]
    if isinstance(expr, ast.BinaryOp):
        op = expr.op.upper()
        left = _compile_with_aggregates(expr.left, layout, agg_slots)
        right = _compile_with_aggregates(expr.right, layout, agg_slots)
        if op == "AND":
            return lambda row, aggs: bool(left(row, aggs)) and bool(right(row, aggs))
        if op == "OR":
            return lambda row, aggs: bool(left(row, aggs)) or bool(right(row, aggs))
        import operator as _op
        table = {"+": _op.add, "-": _op.sub, "*": _op.mul, "/": _op.truediv,
                 "=": _op.eq, "<>": _op.ne, "<": _op.lt, "<=": _op.le,
                 ">": _op.gt, ">=": _op.ge}
        fn = table[expr.op]
        return lambda row, aggs: fn(left(row, aggs), right(row, aggs))
    if isinstance(expr, ast.UnaryOp):
        inner = _compile_with_aggregates(expr.operand, layout, agg_slots)
        if expr.op.upper() == "NOT":
            return lambda row, aggs: not inner(row, aggs)
        return lambda row, aggs: -inner(row, aggs)
    plain = compile_expr(expr, layout)
    return lambda row, aggs: plain(row)


def _collect_aggregates(exprs: list[ast.Expr]) -> list[ast.FunctionCall]:
    calls: list[ast.FunctionCall] = []
    for expr in exprs:
        for node in expr.walk():
            if (isinstance(node, ast.FunctionCall)
                    and node.name.lower() in ast.AGGREGATE_NAMES
                    and node not in calls):
                calls.append(node)
    return calls


def _join_from_list(query: ast.SelectQuery,
                    resolve: Callable[[str], Relation]) -> tuple[Layout, list[tuple]]:
    """Materialize the joined FROM list with WHERE applied.

    Left-deep in FROM order; equi conjuncts between the accumulated prefix
    and the next input become hash joins, single-binding conjuncts are
    applied at the scan, and everything else filters as soon as its
    bindings are all available.
    """
    sources: list[tuple[str, Relation]] = []
    for table_ref in query.from_tables:
        relation = resolve(table_ref.name)
        sources.append((table_ref.binding, relation))

    layout = Layout([(binding, relation.columns)
                     for binding, relation in sources])
    conjuncts = split_conjuncts(query.where)

    # Classify conjuncts by the set of bindings they touch.
    classified: list[tuple[frozenset[str], ast.Expr]] = []
    for conjunct in conjuncts:
        refs = frozenset(referenced_bindings(conjunct, layout))
        classified.append((refs, conjunct))

    consumed = [False] * len(classified)
    current_rows: list[tuple] | None = None
    current_bindings: set[str] = set()

    for position, (binding, relation) in enumerate(sources):
        binding_key = binding.lower()
        offset = layout.offsets[binding_key]
        arity = len(relation.columns)
        # Scan with single-binding pushdown, padded into the full layout
        # so every compiled expression sees one row shape.  Relation rows
        # are plain tuples, so the pads concatenate directly.
        prefix = (None,) * offset
        suffix = (None,) * (layout.arity - offset - arity)
        if prefix and suffix:
            rows = [prefix + r + suffix for r in relation.rows]
        elif prefix:
            rows = [prefix + r for r in relation.rows]
        elif suffix:
            rows = [r + suffix for r in relation.rows]
        else:
            rows = list(relation.rows)
        for i, (refs, conjunct) in enumerate(classified):
            if not consumed[i] and refs == {binding_key}:
                predicate = compile_expr(conjunct, layout)
                rows = [r for r in rows if predicate(r)]
                consumed[i] = True

        if current_rows is None:
            current_rows, current_bindings = rows, {binding_key}
            continue

        available = current_bindings | {binding_key}
        # Equi conjuncts usable for this hash join.
        left_slots: list[int] = []
        right_slots: list[int] = []
        for i, (refs, conjunct) in enumerate(classified):
            if consumed[i] or not refs or not refs <= available:
                continue
            pair = is_equi_conjunct(conjunct)
            if pair is None:
                continue
            a, b = pair
            slot_a, slot_b = layout.slot_of(a), layout.slot_of(b)
            bind_a = layout.binding_of_slot(slot_a).lower()
            bind_b = layout.binding_of_slot(slot_b).lower()
            if bind_a == binding_key and bind_b in current_bindings:
                left_slots.append(slot_b)
                right_slots.append(slot_a)
                consumed[i] = True
            elif bind_b == binding_key and bind_a in current_bindings:
                left_slots.append(slot_a)
                right_slots.append(slot_b)
                consumed[i] = True

        def merge(left_row: tuple, right_row: tuple) -> tuple:
            return tuple(l if l is not None else r
                         for l, r in zip(left_row, right_row))

        if left_slots:
            table: dict = {}
            for row in rows:
                key = tuple(row[s] for s in right_slots)
                table.setdefault(key, []).append(row)
            joined = []
            for row in current_rows:
                bucket = table.get(tuple(row[s] for s in left_slots))
                if bucket:
                    joined.extend(merge(row, other) for other in bucket)
        else:
            joined = [merge(row, other) for row in current_rows for other in rows]

        current_rows = joined
        current_bindings = available

        # Apply any now-evaluable residual conjuncts.
        for i, (refs, conjunct) in enumerate(classified):
            if not consumed[i] and refs <= current_bindings:
                predicate = compile_expr(conjunct, layout)
                current_rows = [r for r in current_rows if predicate(r)]
                consumed[i] = True

    if current_rows is None:
        current_rows = [()]
    for i, (refs, conjunct) in enumerate(classified):
        if not consumed[i]:
            predicate = compile_expr(conjunct, layout)
            current_rows = [r for r in current_rows if predicate(r)]
            consumed[i] = True
    return layout, current_rows


def execute_select(query: ast.SelectQuery,
                   resolve: Callable[[str], Relation],
                   result_name: str = "result",
                   tracer=None) -> Relation:
    """Execute one SELECT block against materialized relations.

    ``resolve`` maps a table/view name to its :class:`Relation`; it raises
    ``KeyError`` for unknown names, which is converted to a friendly
    :class:`AnalysisError`.  When a :class:`repro.engine.tracing.Tracer`
    is supplied, the block runs under a ``select`` span annotated with
    its output cardinality, so EXPLAIN ANALYZE covers the non-recursive
    strata too.
    """
    if tracer is not None:
        with tracer.span("select", result_name) as span:
            relation = _execute_select(query, resolve, result_name)
            span.annotate(output_rows=len(relation.rows))
            return relation
    return _execute_select(query, resolve, result_name)


def _execute_select(query: ast.SelectQuery,
                    resolve: Callable[[str], Relation],
                    result_name: str = "result") -> Relation:
    def safe_resolve(name: str) -> Relation:
        try:
            return resolve(name)
        except KeyError:
            raise AnalysisError(f"unknown table or view {name!r}") from None

    layout, rows = _join_from_list(query, safe_resolve)

    # Disambiguate duplicate output names (``SELECT a.Src, b.Src``): SQL
    # tolerates them, our Schema does not, so later duplicates get suffixes.
    column_names_list: list[str] = []
    seen_names: dict[str, int] = {}
    for i, item in enumerate(query.items):
        name = item.output_name(i)
        key = name.lower()
        if key in seen_names:
            seen_names[key] += 1
            name = f"{name}_{seen_names[key]}"
        else:
            seen_names[key] = 0
        column_names_list.append(name)
    column_names = tuple(column_names_list)
    item_exprs = [item.expr for item in query.items]
    aggregate_calls = _collect_aggregates(
        item_exprs + ([query.having] if query.having is not None else []))

    if aggregate_calls or query.group_by:
        if query.group_by:
            group_fns = [compile_expr(e, layout) for e in query.group_by]
            groups: dict[tuple, list[tuple]] = {}
            for row in rows:
                key = tuple(fn(row) for fn in group_fns)
                groups.setdefault(key, []).append(row)
        else:
            groups = {(): rows}

        agg_slots = {call: i for i, call in enumerate(aggregate_calls)}
        compiled_items = [_compile_with_aggregates(e, layout, agg_slots)
                          for e in item_exprs]
        compiled_having = (_compile_with_aggregates(query.having, layout, agg_slots)
                           if query.having is not None else None)

        out_rows = []
        for key, group_rows in groups.items():
            if not group_rows:
                continue
            representative = group_rows[0]
            agg_values = [_aggregate_value(call, group_rows, layout)
                          for call in aggregate_calls]
            if compiled_having is not None and not compiled_having(
                    representative, agg_values):
                continue
            out_rows.append(tuple(fn(representative, agg_values)
                                  for fn in compiled_items))
    elif all(isinstance(e, ast.ColumnRef) for e in item_exprs):
        # Pure-projection fast path: one itemgetter per row instead of a
        # closure call per cell.
        slots = tuple(layout.slot_of(e) for e in item_exprs)
        if len(slots) == 1:
            slot = slots[0]
            out_rows = [(row[slot],) for row in rows]
        else:
            out_rows = list(map(itemgetter(*slots), rows))
    else:
        compiled = [compile_expr(e, layout) for e in item_exprs]
        out_rows = [tuple(fn(row) for fn in compiled) for row in rows]

    if query.distinct:
        out_rows = list(dict.fromkeys(out_rows))

    if query.order_by:
        lowered = [name.lower() for name in column_names]
        keys: list[tuple[int, bool]] = []
        for item in query.order_by:
            if isinstance(item.expr, ast.ColumnRef) and item.expr.table is None:
                try:
                    position = lowered.index(item.expr.name.lower())
                except ValueError:
                    raise AnalysisError(
                        f"ORDER BY column {item.expr.name!r} is not in the "
                        f"output ({column_names})") from None
            elif isinstance(item.expr, ast.Literal) and isinstance(
                    item.expr.value, int):
                position = item.expr.value - 1
                if not 0 <= position < len(column_names):
                    raise AnalysisError(
                        f"ORDER BY position {item.expr.value} out of range")
            else:
                raise AnalysisError(
                    "ORDER BY supports output column names or 1-based "
                    "positions")
            keys.append((position, item.descending))
        # Stable sort from the least significant key.
        for position, descending in reversed(keys):
            out_rows.sort(key=lambda row: row[position], reverse=descending)

    if query.limit is not None:
        out_rows = out_rows[:query.limit]
    # Every path above produced plain tuples of the output arity.
    return Relation.from_tuples(result_name, column_names, out_rows)
