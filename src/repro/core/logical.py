"""Logical plan nodes — the Recursive Clique Plan of Section 5 / Figure 2(a).

The two-step compilation works exactly as the paper describes: during
analysis, references to views of the current WITH clause are recognized and
replaced by :class:`RecursiveScan` *mark points*, which stops reference
resolution from recursing forever.  The surrounding operators (scan, n-ary
join, filter, project) are resolved and optimized normally, producing one
:class:`RulePlan` per union branch, grouped into a :class:`CliquePlan` per
strongly-connected component of the view dependency graph.

``explain()`` renders the tree in the style of Figure 2 so plan-shape tests
can assert against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import ast_nodes as ast
from repro.core.expressions import Layout
from repro.engine.aggregates import AggregateFunction


@dataclass
class ScanNode:
    """Scan of a base table or previously materialized view."""

    relation: str
    binding: str
    columns: tuple[str, ...]
    #: Residual single-table predicate pushed down by the optimizer.
    filter: ast.Expr | None = None

    def explain(self) -> str:
        suffix = f" [{self.filter.to_sql()}]" if self.filter is not None else ""
        return f"Scan {self.relation} AS {self.binding}{suffix}"


@dataclass
class RecursiveScanNode:
    """A mark point: reference to a recursive relation of the current clique."""

    view: str
    binding: str
    columns: tuple[str, ...]

    def explain(self) -> str:
        return f"ScanRecRelation {self.view} AS {self.binding}"


@dataclass
class JoinNode:
    """N-ary join of the FROM list with classified conjuncts.

    ``equi_conjuncts`` are ``col = col`` pairs between two bindings;
    ``residual`` holds everything else (theta predicates, constants that
    survived folding).  The physical planner orders this join.
    """

    inputs: list[ScanNode | RecursiveScanNode]
    equi_conjuncts: list[tuple[ast.ColumnRef, ast.ColumnRef]] = field(default_factory=list)
    residual: list[ast.Expr] = field(default_factory=list)

    def explain(self) -> str:
        conds = [f"{l.to_sql()}={r.to_sql()}" for l, r in self.equi_conjuncts]
        conds += [e.to_sql() for e in self.residual]
        header = f"Join [{', '.join(conds)}]" if conds else "Join [cross]"
        lines = [header]
        for node in self.inputs:
            for i, line in enumerate(node.explain().splitlines()):
                prefix = "├─ " if i == 0 else "│  "
                lines.append(prefix + line)
        return "\n".join(lines)


@dataclass
class RulePlan:
    """One union branch of a view: project over join over scans.

    ``projections`` are the head-column expressions in head order;
    ``layout`` is the flattened row shape of ``join.inputs`` the
    expressions were resolved against.  ``constant_rows`` is set instead
    when the branch has no FROM list (``SELECT 1, 0``).
    """

    view: str
    join: JoinNode | None
    projections: tuple[ast.Expr, ...]
    layout: Layout | None
    constant_rows: tuple[tuple, ...] = ()

    @property
    def is_recursive(self) -> bool:
        return self.join is not None and any(
            isinstance(node, RecursiveScanNode) for node in self.join.inputs)

    def recursive_inputs(self) -> list[int]:
        """Positions of recursive scans within the join inputs."""
        if self.join is None:
            return []
        return [i for i, node in enumerate(self.join.inputs)
                if isinstance(node, RecursiveScanNode)]

    def explain(self) -> str:
        exprs = ", ".join(e.to_sql() for e in self.projections)
        lines = [f"Project [{exprs}]"]
        if self.join is not None:
            for i, line in enumerate(self.join.explain().splitlines()):
                prefix = "└─ " if i == 0 else "   "
                lines.append(prefix + line)
        else:
            lines.append(f"└─ Values {list(self.constant_rows)}")
        return "\n".join(lines)


@dataclass
class ViewPlan:
    """One recursive view of a clique: head schema plus its rules."""

    name: str
    columns: tuple[str, ...]
    #: Aggregate per head column, ``None`` for group-key columns.
    aggregates: tuple[AggregateFunction | None, ...]
    base_rules: list[RulePlan]
    recursive_rules: list[RulePlan]

    @property
    def has_aggregates(self) -> bool:
        return any(a is not None for a in self.aggregates)

    @property
    def group_positions(self) -> tuple[int, ...]:
        return tuple(i for i, a in enumerate(self.aggregates) if a is None)

    @property
    def aggregate_positions(self) -> tuple[int, ...]:
        return tuple(i for i, a in enumerate(self.aggregates) if a is not None)

    def explain(self) -> str:
        aggs = ", ".join(
            f"{agg.name}({col})" if agg else col
            for col, agg in zip(self.columns, self.aggregates))
        lines = [f"RecursiveRelation {self.name} [{aggs}]"]
        for label, rules in (("Base", self.base_rules),
                             ("Recursive", self.recursive_rules)):
            for rule in rules:
                lines.append(f"├─ {label}:")
                for line in rule.explain().splitlines():
                    lines.append("│    " + line)
        return "\n".join(lines)


@dataclass
class CliquePlan:
    """A recursive clique: the unit the fixpoint operator evaluates.

    Mutual recursion (Party Attendance, Company Control) yields a clique
    with several views; the common case is a singleton.
    """

    views: list[ViewPlan]

    @property
    def view_names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.views)

    def view(self, name: str) -> ViewPlan:
        for view in self.views:
            if view.name.lower() == name.lower():
                return view
        raise KeyError(name)

    def explain(self) -> str:
        lines = [f"RecursiveClique {', '.join(self.view_names)}"]
        for view in self.views:
            for line in view.explain().splitlines():
                lines.append("  " + line)
        return "\n".join(lines)


@dataclass
class DerivedViewPlan:
    """A non-recursive WITH view or CREATE VIEW, evaluated once.

    ``branches`` are unioned with duplicate elimination (SQL UNION).
    """

    name: str
    columns: tuple[str, ...]
    branches: tuple[ast.SelectQuery, ...]

    def explain(self) -> str:
        return f"View {self.name}({', '.join(self.columns)})"


@dataclass
class AnalyzedScript:
    """Everything the executor needs, in evaluation order.

    ``units`` interleaves :class:`DerivedViewPlan` and :class:`CliquePlan`
    in dependency order; ``final`` is the outer SELECT, which may reference
    any of them.
    """

    units: list[DerivedViewPlan | CliquePlan]
    final: ast.SelectQuery

    def cliques(self) -> list[CliquePlan]:
        return [u for u in self.units if isinstance(u, CliquePlan)]

    def explain(self) -> str:
        lines = []
        for unit in self.units:
            lines.append(unit.explain())
        lines.append(f"Final: {self.final.to_sql()}")
        return "\n".join(lines)
