"""Abstract syntax tree of the RaSQL dialect (Section 2).

The dialect is SQL:99's recursive CTE plus one extension: a view column may
be declared as ``min() AS Name`` / ``max()`` / ``sum()`` / ``count()``,
turning the column into an aggregate evaluated *inside* the recursion with
the implicit group-by rule (all non-aggregate head columns group).

Every node knows how to render itself back to SQL (``to_sql``), which the
parser round-trip property tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""

    def to_sql(self) -> str:
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string, boolean or NULL."""

    value: object

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly qualified column reference, e.g. ``edge.Dst`` or ``Days``."""

    name: str
    table: str | None = None

    def to_sql(self) -> str:
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` inside ``count(*)``."""

    def to_sql(self) -> str:
        return "*"


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic, comparison or boolean connective."""

    op: str
    left: Expr
    right: Expr

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class UnaryOp(Expr):
    """``NOT expr`` or ``-expr``."""

    op: str
    operand: Expr

    def to_sql(self) -> str:
        if self.op.upper() == "NOT":
            return f"(NOT {self.operand.to_sql()})"
        return f"({self.op}{self.operand.to_sql()})"

    def children(self):
        return (self.operand,)


@dataclass(frozen=True)
class FunctionCall(Expr):
    """An aggregate call in an ordinary (non-recursive-head) position.

    ``count(distinct cc.CmpId)`` sets ``distinct=True``.
    """

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False

    def to_sql(self) -> str:
        inner = ", ".join(a.to_sql() for a in self.args)
        if self.distinct:
            inner = f"distinct {inner}"
        return f"{self.name}({inner})"

    def children(self):
        return self.args


@dataclass(frozen=True)
class Case(Expr):
    """``CASE WHEN cond THEN value ... [ELSE value] END``.

    A missing ELSE yields NULL, as in SQL.
    """

    whens: tuple[tuple[Expr, Expr], ...]
    default: Expr | None = None

    def to_sql(self) -> str:
        parts = ["CASE"]
        for condition, value in self.whens:
            parts.append(f"WHEN {condition.to_sql()} THEN {value.to_sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.to_sql()}")
        parts.append("END")
        return " ".join(parts)

    def children(self):
        out = []
        for condition, value in self.whens:
            out.extend((condition, value))
        if self.default is not None:
            out.append(self.default)
        return tuple(out)


AGGREGATE_NAMES = frozenset({"min", "max", "sum", "count", "avg"})


def contains_aggregate(expr: Expr) -> bool:
    """True when any node in *expr* is an aggregate function call."""
    return any(isinstance(node, FunctionCall)
               and node.name.lower() in AGGREGATE_NAMES
               for node in expr.walk())


# ---------------------------------------------------------------------------
# queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One output column of a SELECT: expression plus optional alias."""

    expr: Expr
    alias: str | None = None

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.expr.to_sql()} AS {self.alias}"
        return self.expr.to_sql()

    def output_name(self, position: int) -> str:
        """The column name this item exposes, defaulting positionally."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return f"_c{position}"


@dataclass(frozen=True)
class TableRef:
    """A FROM-list entry: table or view name plus optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name this relation is referred to by within the query."""
        return self.alias or self.name

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.name} {self.alias}"
        return self.name


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key: an output column name or 1-based position."""

    expr: Expr
    descending: bool = False

    def to_sql(self) -> str:
        suffix = " DESC" if self.descending else ""
        return self.expr.to_sql() + suffix


@dataclass(frozen=True)
class SelectQuery:
    """A single SELECT block (one branch of a union, or a final query).

    ``order_by``/``limit`` are final-stratum conveniences: legal on the
    outer SELECT (and in views evaluated by the local executor), rejected
    inside recursive view branches where row order has no meaning.
    """

    items: tuple[SelectItem, ...]
    from_tables: tuple[TableRef, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None

    def to_sql(self) -> str:
        parts = ["SELECT "]
        if self.distinct:
            parts.append("DISTINCT ")
        parts.append(", ".join(i.to_sql() for i in self.items))
        if self.from_tables:
            parts.append(" FROM " + ", ".join(t.to_sql() for t in self.from_tables))
        if self.where is not None:
            parts.append(" WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append(" GROUP BY " + ", ".join(e.to_sql() for e in self.group_by))
        if self.having is not None:
            parts.append(" HAVING " + self.having.to_sql())
        if self.order_by:
            parts.append(" ORDER BY " + ", ".join(o.to_sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f" LIMIT {self.limit}")
        return "".join(parts)


# ---------------------------------------------------------------------------
# views and statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnSpec:
    """One declared column of a CTE view head.

    ``aggregate`` is ``None`` for a plain column, or one of
    ``min``/``max``/``sum``/``count`` for RaSQL's aggregate-in-recursion
    columns (``min() AS Cost``).
    """

    name: str
    aggregate: str | None = None

    def to_sql(self) -> str:
        if self.aggregate:
            return f"{self.aggregate}() AS {self.name}"
        return self.name


@dataclass(frozen=True)
class ViewDef:
    """One CTE view: head schema plus a union of SELECT branches."""

    name: str
    columns: tuple[ColumnSpec, ...]
    branches: tuple[SelectQuery, ...]
    recursive: bool = False

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def aggregate_columns(self) -> tuple[ColumnSpec, ...]:
        return tuple(c for c in self.columns if c.aggregate)

    @property
    def has_aggregates(self) -> bool:
        return any(c.aggregate for c in self.columns)

    def to_sql(self) -> str:
        head = ", ".join(c.to_sql() for c in self.columns)
        body = " UNION ".join(f"({b.to_sql()})" for b in self.branches)
        prefix = "recursive " if self.recursive else ""
        return f"{prefix}{self.name} ({head}) AS {body}"


@dataclass(frozen=True)
class WithQuery:
    """``WITH view, view, ... SELECT ...`` — the top-level RaSQL construct."""

    views: tuple[ViewDef, ...]
    final: SelectQuery

    def to_sql(self) -> str:
        views = ",\n".join(v.to_sql() for v in self.views)
        return f"WITH {views}\n{self.final.to_sql()}"


@dataclass(frozen=True)
class CreateView(Expr):
    """``CREATE VIEW name(cols) AS (query)`` — a non-recursive named view."""

    name: str
    columns: tuple[str, ...]
    query: SelectQuery

    def to_sql(self) -> str:
        cols = f"({', '.join(self.columns)})" if self.columns else ""
        return f"CREATE VIEW {self.name}{cols} AS ({self.query.to_sql()})"


Statement = Union[CreateView, WithQuery, SelectQuery]


@dataclass(frozen=True)
class Script:
    """A sequence of statements; the last one produces the result."""

    statements: tuple[Statement, ...]

    def to_sql(self) -> str:
        return ";\n".join(s.to_sql() for s in self.statements)
