"""Semantic analysis: the two-step compilation of Section 5.

Step one walks the WITH clause and *recognizes recursive table references*:
any FROM entry naming a view of the same strongly-connected component of
the view dependency graph becomes a :class:`RecursiveScanNode` mark point,
which is what stops reference resolution from looping.  Together with the
implicit group-by rule (all non-aggregate head columns group), this yields
the Recursive Clique Plan of Figure 2(a).

Step two resolves everything else like an ordinary SQL analyzer: aliases,
column references (with ambiguity checks), arity of union branches against
the view head, and the aggregate whitelist (``avg`` is rejected inside
recursion — Section 3 explains why its fixpoint would be unsound).
"""

from __future__ import annotations

from repro.core import ast_nodes as ast
from repro.core.catalog import Catalog
from repro.core.expressions import Layout, split_conjuncts
from repro.core.logical import (
    AnalyzedScript,
    CliquePlan,
    DerivedViewPlan,
    JoinNode,
    RecursiveScanNode,
    RulePlan,
    ScanNode,
    ViewPlan,
)
from repro.engine.aggregates import BY_NAME as AGGREGATES_IN_RECURSION
from repro.errors import AnalysisError


def _strongly_connected_components(nodes: list[str],
                                   edges: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's algorithm; emits SCCs in dependency (reverse-topological)
    order, i.e. every SCC appears after the SCCs it depends on... precisely:
    each emitted SCC only depends on SCCs emitted *before* it."""
    index_counter = [0]
    stack: list[str] = []
    lowlink: dict[str, int] = {}
    index: dict[str, int] = {}
    on_stack: dict[str, bool] = {}
    result: list[list[str]] = []

    def visit(node: str):
        # Iterative Tarjan to avoid recursion limits on deep view chains.
        work = [(node, iter(sorted(edges.get(node, ()))))]
        index[node] = lowlink[node] = index_counter[0]
        index_counter[0] += 1
        stack.append(node)
        on_stack[node] = True
        while work:
            current, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack[successor] = True
                    work.append((successor, iter(sorted(edges.get(successor, ())))))
                    advanced = True
                    break
                if on_stack.get(successor):
                    lowlink[current] = min(lowlink[current], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index[current]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == current:
                        break
                result.append(component)

    for node in nodes:
        if node not in index:
            visit(node)
    return result


class Analyzer:
    """Binds a parsed script against a catalog of base-table schemas."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        #: Views defined earlier in the script (CREATE VIEW or earlier units),
        #: name(lower) -> columns.
        self.derived_schemas: dict[str, tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def analyze(self, script: ast.Script) -> AnalyzedScript:
        units: list[DerivedViewPlan | CliquePlan] = []
        final: ast.SelectQuery | None = None

        for position, statement in enumerate(script.statements):
            is_last = position == len(script.statements) - 1
            if isinstance(statement, ast.CreateView):
                units.append(self._analyze_create_view(statement))
            elif isinstance(statement, ast.WithQuery):
                if not is_last:
                    raise AnalysisError("WITH query must be the final statement")
                units.extend(self._analyze_with_views(statement.views))
                final = statement.final
            elif isinstance(statement, ast.SelectQuery):
                if not is_last:
                    raise AnalysisError("SELECT must be the final statement")
                final = statement
            else:
                raise AnalysisError(f"unsupported statement {statement!r}")

        if final is None:
            raise AnalysisError("script has no final SELECT")
        self._validate_final(final)
        return AnalyzedScript(units, final)

    # ------------------------------------------------------------------
    # name environment
    # ------------------------------------------------------------------

    def _schema_of(self, name: str) -> tuple[str, ...] | None:
        key = name.lower()
        if key in self.derived_schemas:
            return self.derived_schemas[key]
        if name in self.catalog:
            return self.catalog.schema_of(name)
        return None

    # ------------------------------------------------------------------
    # CREATE VIEW
    # ------------------------------------------------------------------

    def _analyze_create_view(self, statement: ast.CreateView) -> DerivedViewPlan:
        query = statement.query
        inferred = tuple(item.output_name(i) for i, item in enumerate(query.items))
        columns = statement.columns or inferred
        if len(columns) != len(query.items):
            raise AnalysisError(
                f"view {statement.name!r} declares {len(columns)} columns "
                f"but its query produces {len(query.items)}")
        self._validate_plain_query(query, context=f"view {statement.name!r}")
        self.derived_schemas[statement.name.lower()] = tuple(columns)
        return DerivedViewPlan(statement.name, tuple(columns), (query,))

    # ------------------------------------------------------------------
    # WITH views: dependency graph, SCCs, per-view plans
    # ------------------------------------------------------------------

    def _analyze_with_views(self, views: tuple[ast.ViewDef, ...]
                            ) -> list[DerivedViewPlan | CliquePlan]:
        by_name = {v.name.lower(): v for v in views}
        if len(by_name) != len(views):
            raise AnalysisError("duplicate view names in WITH clause")

        edges: dict[str, set[str]] = {name: set() for name in by_name}
        for view in views:
            for branch in view.branches:
                for table_ref in branch.from_tables:
                    target = table_ref.name.lower()
                    if target in by_name:
                        edges[view.name.lower()].add(target)

        components = _strongly_connected_components(sorted(by_name), edges)

        units: list[DerivedViewPlan | CliquePlan] = []
        for component in components:
            component_views = [by_name[name] for name in component]
            self_recursive = any(
                name in edges[name] for name in component)
            is_recursive_component = (
                len(component) > 1 or self_recursive
                or any(v.recursive or v.has_aggregates for v in component_views))
            if is_recursive_component:
                units.append(self._analyze_clique(component_views, set(component)))
            else:
                units.append(self._analyze_derived_view(component_views[0]))
        return units

    def _analyze_derived_view(self, view: ast.ViewDef) -> DerivedViewPlan:
        columns = view.column_names
        for branch in view.branches:
            if len(branch.items) != len(columns):
                raise AnalysisError(
                    f"branch of view {view.name!r} produces "
                    f"{len(branch.items)} columns, head declares {len(columns)}")
            self._validate_plain_query(branch, context=f"view {view.name!r}")
        self.derived_schemas[view.name.lower()] = columns
        return DerivedViewPlan(view.name, columns, view.branches)

    def _analyze_clique(self, views: list[ast.ViewDef],
                        clique_names: set[str]) -> CliquePlan:
        # Register schemas first: rules may reference any clique member.
        for view in views:
            self.derived_schemas[view.name.lower()] = view.column_names

        view_plans = []
        for view in views:
            aggregates = []
            for spec in view.columns:
                if spec.aggregate is None:
                    aggregates.append(None)
                elif spec.aggregate in AGGREGATES_IN_RECURSION:
                    aggregates.append(AGGREGATES_IN_RECURSION[spec.aggregate])
                else:
                    raise AnalysisError(
                        f"aggregate {spec.aggregate!r} is not usable in "
                        f"recursion (view {view.name!r}); RaSQL supports "
                        f"min, max, sum, count")

            base_rules: list[RulePlan] = []
            recursive_rules: list[RulePlan] = []
            for branch in view.branches:
                rule = self._analyze_rule(view, branch, clique_names)
                if rule.is_recursive:
                    recursive_rules.append(rule)
                else:
                    base_rules.append(rule)

            # A clique view may have no base rule of its own when it is
            # defined purely from its siblings (Company Control's
            # ``control``); the clique-level check below still requires a
            # non-recursive entry point somewhere.
            view_plans.append(ViewPlan(view.name, view.column_names,
                                       tuple(aggregates), base_rules,
                                       recursive_rules))

        if all(not plan.base_rules for plan in view_plans):
            raise AnalysisError(
                f"recursive clique {sorted(clique_names)} has no base case")
        return CliquePlan(view_plans)

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------

    def _analyze_rule(self, view: ast.ViewDef, branch: ast.SelectQuery,
                      clique_names: set[str]) -> RulePlan:
        if len(branch.items) != len(view.columns):
            raise AnalysisError(
                f"branch of view {view.name!r} produces {len(branch.items)} "
                f"columns, head declares {len(view.columns)}")
        if branch.group_by or branch.having is not None:
            raise AnalysisError(
                f"GROUP BY/HAVING is not allowed inside the recursive view "
                f"{view.name!r}; RaSQL's implicit group-by covers it")
        if branch.order_by or branch.limit is not None:
            raise AnalysisError(
                f"ORDER BY/LIMIT is not allowed inside the recursive view "
                f"{view.name!r}; apply it in the final SELECT")
        for item in branch.items:
            if ast.contains_aggregate(item.expr):
                raise AnalysisError(
                    f"explicit aggregate in a branch of view {view.name!r}; "
                    f"declare it in the view head instead (implicit group-by)")

        projections = tuple(item.expr for item in branch.items)

        if not branch.from_tables:
            rows = []
            values = []
            for expr in projections:
                if not isinstance(expr, ast.Literal):
                    raise AnalysisError(
                        "a FROM-less branch may only select constants")
                values.append(expr.value)
            rows.append(tuple(values))
            if branch.where is not None:
                raise AnalysisError("WHERE without FROM is not supported")
            return RulePlan(view.name, None, projections, None, tuple(rows))

        inputs: list[ScanNode | RecursiveScanNode] = []
        for table_ref in branch.from_tables:
            name_key = table_ref.name.lower()
            if name_key in clique_names:
                columns = self.derived_schemas[name_key]
                inputs.append(RecursiveScanNode(table_ref.name,
                                                table_ref.binding, columns))
            else:
                schema = self._schema_of(table_ref.name)
                if schema is None:
                    raise AnalysisError(
                        f"unknown table {table_ref.name!r} in view "
                        f"{view.name!r}")
                inputs.append(ScanNode(table_ref.name, table_ref.binding,
                                       schema))

        layout = Layout([(node.binding, node.columns) for node in inputs])
        join = JoinNode(inputs, equi_conjuncts=[],
                        residual=split_conjuncts(branch.where))

        # Resolve every column reference now, so errors surface at analysis
        # time with query context rather than mid-fixpoint.
        for expr in list(projections) + join.residual:
            for node in expr.walk():
                if isinstance(node, ast.ColumnRef):
                    layout.slot_of(node)

        return RulePlan(view.name, join, projections, layout)

    # ------------------------------------------------------------------
    # plain queries (final SELECT, CREATE VIEW bodies, derived views)
    # ------------------------------------------------------------------

    def _validate_plain_query(self, query: ast.SelectQuery, context: str) -> None:
        for table_ref in query.from_tables:
            if self._schema_of(table_ref.name) is None:
                known = sorted(set(self.catalog.names())
                               | set(self.derived_schemas))
                raise AnalysisError(
                    f"unknown table {table_ref.name!r} in {context} "
                    f"(available: {known})")

    def _validate_final(self, query: ast.SelectQuery) -> None:
        self._validate_plain_query(query, context="the final SELECT")


def analyze(script: ast.Script, catalog: Catalog) -> AnalyzedScript:
    """Convenience wrapper: analyze a parsed script against *catalog*."""
    return Analyzer(catalog).analyze(script)
