"""Whole-pipeline code generation (Section 7.3).

The interpreted term pipeline materializes a padded-row list after every
step and dispatches each expression through closure chains — the classic
volcano-model overheads the paper's whole-stage code generation removes.
This module collapses all operators of one term into a single generated
Python function: one pass of nested loops with inlined key extraction,
predicates and projection, compiled once with ``compile()`` at plan time.

Structure of a generated function (SSSP's recursive rule)::

    def _term(delta_rows, partition, runtime):
        _tbl1 = runtime.base_partitions[1][partition]
        _out = []
        _append = _out.append
        for d in delta_rows:
            _b1 = _tbl1.get(d[0])
            if _b1 is None:
                continue
            for r1 in _b1:
                _append(((r1[2]), (d[1] + r1[4])))
        return _out

Bindings are indexed directly (``d[i]`` for the delta, ``r{k}[slot]`` for
padded build rows), so no combined row is ever constructed.  Sort-merge
terms are not fused (the paper's codegen experiments run shuffle-hash);
generation falls back to the interpreted pipeline for them.
"""

from __future__ import annotations

from typing import Callable

from repro.core import ast_nodes as ast
from repro.core.expressions import Layout
from repro.core.logical import RulePlan
from repro.core.physical import (
    CompiledTerm,
    FilterStep,
    GroupedDedupSpec,
    HashJoinStep,
    NestedLoopStep,
    SortMergeJoinStep,
    TotalizeStep,
)
from repro.engine.aggregates import AggregateFunction
from repro.errors import PlanningError

_OP_MAP = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
           "+": "+", "-": "-", "*": "*", "/": "/"}


class _SlotNamer:
    """Maps absolute layout slots to generated-code references.

    The delta binding's rows are raw view rows (relative indexing on
    variable ``d``); every joined binding ``k`` holds a padded row in
    variable ``r{k}`` indexed by absolute slot.  State/delta-source tables
    also hold raw rows, indexed relative to their segment.
    """

    def __init__(self, delta_offset: int, delta_arity: int):
        self.delta_offset = delta_offset
        self.delta_arity = delta_arity
        #: slot range -> (variable name, base offset to subtract)
        self.segments: list[tuple[range, str, int]] = [
            (range(delta_offset, delta_offset + delta_arity), "d", delta_offset)
        ]

    def add_segment(self, offset: int, arity: int, var: str,
                    raw: bool) -> None:
        base = offset if raw else 0
        self.segments.append((range(offset, offset + arity), var, base))

    def ref(self, slot: int) -> str:
        for span, var, base in self.segments:
            if slot in span:
                return f"{var}[{slot - base}]"
        raise PlanningError(f"codegen: slot {slot} not bound yet")


def _expr_source(expr: ast.Expr, layout: Layout, namer: _SlotNamer) -> str:
    """Compile an expression AST to a Python source fragment."""
    if isinstance(expr, ast.Literal):
        return repr(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return namer.ref(layout.slot_of(expr))
    if isinstance(expr, ast.BinaryOp):
        op = expr.op.upper()
        left = _expr_source(expr.left, layout, namer)
        right = _expr_source(expr.right, layout, namer)
        if op == "AND":
            return f"({left} and {right})"
        if op == "OR":
            return f"({left} or {right})"
        return f"({left} {_OP_MAP[expr.op]} {right})"
    if isinstance(expr, ast.UnaryOp):
        inner = _expr_source(expr.operand, layout, namer)
        if expr.op.upper() == "NOT":
            return f"(not {inner})"
        return f"(-{inner})"
    if isinstance(expr, ast.Case):
        # Nested conditional expressions; missing ELSE yields None.
        source = ("None" if expr.default is None
                  else _expr_source(expr.default, layout, namer))
        for condition, value in reversed(expr.whens):
            source = (f"({_expr_source(value, layout, namer)} "
                      f"if {_expr_source(condition, layout, namer)} "
                      f"else {source})")
        return source
    raise PlanningError(f"codegen: unsupported expression {expr!r}")


def generate_term_function(term: CompiledTerm,
                           aggregates: tuple[AggregateFunction | None, ...],
                           kernels: bool = False,
                           dedup: bool = False) -> Callable | None:
    """Generate the fused function for one term, or ``None`` if not fusible.

    ``aggregates`` are the target view's effective aggregates (for
    contribution normalization in the projection).

    ``kernels`` applies the kernel-layer micro-specializations (hoisted
    bound ``dict.get`` probes); off, the emitted code matches the seed's
    reference generation exactly.

    ``dedup`` emits the set-fixpoint variant: a single list
    comprehension ``_term(delta_rows, partition, runtime) -> derived``
    returning the round's derived rows *including duplicates*.  The
    whole probe loop runs inside one comprehension frame — no per-row
    interpreted append or membership branch — and the driver dedups the
    round in one shot with C-level set algebra.  Only valid for
    aggregate-free, non-negated, totalize-free terms.
    """
    rule: RulePlan | None = term.rule
    if rule is None or rule.layout is None:
        return None
    layout = rule.layout
    namer = _SlotNamer(term.delta_offset,
                       _delta_arity(term, layout))

    env: dict[str, object] = {}
    prologue: list[str] = []
    body: list[str] = []
    indent = 2  # inside ``for d in delta_rows:``

    def emit(line: str, level: int) -> None:
        body.append("    " * level + line)

    # Delta prefilter (base rules): operates on padded rows in the
    # interpreted path; here we inline it in raw space.
    prefilter_src = None
    if term.delta_prefilter is not None:
        scan = rule.join.inputs[0]
        if getattr(scan, "filter", None) is not None:
            prefilter_src = _expr_source(scan.filter, layout, namer)
        else:
            return None  # prefilter we cannot re-derive: fall back

    join_var = 0
    has_totalize = False
    first_join_mark: tuple[int, int] | None = None
    clauses: list[str] = []  # comprehension clauses for the dedup variant
    for step in term.steps:
        if isinstance(step, SortMergeJoinStep):
            return None  # not fused; interpreted path handles it
        if isinstance(step, TotalizeStep):
            if dedup:
                return None  # statement-based row patching; not fusible
            has_totalize = True
            # Inline total lookup: patch a copy of the raw delta row.
            group_refs = ", ".join(namer.ref(s) for s in step.group_slots)
            key = f"({group_refs},)" if len(step.group_slots) > 1 else group_refs
            emit(f"_tot = runtime.state_total({step.view!r}, partition, {key})",
                 indent)
            emit("if _tot is None:", indent)
            emit("    continue", indent)
            emit("_d = list(d)", indent)
            for slot, position in step.agg_slot_to_position:
                emit(f"_d[{slot - term.delta_offset}] = _tot[{position}]", indent)
            emit("d = _d", indent)
            continue
        if isinstance(step, FilterStep):
            source = _filter_source(step, layout, namer)
            if source is None:
                return None
            if dedup:
                clauses.append(f"if {source}")
                continue
            emit(f"if not {source}:", indent)
            emit("    continue", indent)
            continue
        if isinstance(step, HashJoinStep):
            join_var += 1
            if first_join_mark is None:
                first_join_mark = (len(body), indent)
            var = f"r{join_var}"
            table = f"_tbl{step.step_id}"
            if step.source == "broadcast":
                prologue.append(
                    f"    {table} = runtime.broadcast_tables[{step.step_id}]")
                raw = False
            elif step.source == "base_partition":
                prologue.append(
                    f"    {table} = runtime.base_partitions"
                    f"[{step.step_id}][partition]")
                raw = False
            else:
                accessor = ("runtime.state_rows" if step.source == "state"
                            else "runtime.delta_rows")
                source_partition = "-1" if step.gather else "partition"
                positions = tuple(
                    s - step.state_offset for s in step.build_slots)
                if step.source == "state":
                    # Kernel layer: version-validated cached table when
                    # enabled; bit-exact rebuild otherwise.
                    prologue.append(
                        f"    {table} = (runtime.state_table("
                        f"{step.state_view!r}, {source_partition}, "
                        f"{positions!r}, None) "
                        f"if runtime.state_table is not None "
                        f"else _build_state_table("
                        f"{accessor}({step.state_view!r}, "
                        f"{source_partition}), {positions!r}))")
                else:
                    prologue.append(
                        f"    {table} = _build_state_table("
                        f"{accessor}({step.state_view!r}, {source_partition}), "
                        f"{positions!r})")
                raw = True
            key_refs = [namer.ref(s) for s in step.probe_slots]
            key = (f"({', '.join(key_refs)},)" if len(key_refs) > 1
                   else key_refs[0])
            bucket = f"_b{join_var}"
            if kernels or dedup:
                prologue.append(f"    _get{join_var} = {table}.get")
            if dedup:
                # ``.get`` with an empty-tuple default makes a missed
                # probe a zero-iteration inner loop.
                clauses.append(f"for {var} in _get{join_var}({key}, _E)")
            elif kernels:
                emit(f"{bucket} = _get{join_var}({key})", indent)
            else:
                emit(f"{bucket} = {table}.get({key})", indent)
            if not dedup:
                emit(f"if {bucket} is None:", indent)
                emit("    continue", indent)
                emit(f"for {var} in {bucket}:", indent)
            namer.add_segment(_fix_hash_join_segment(step, layout),
                              _step_arity(step, layout), var, raw)
            indent += 1
            continue
        if isinstance(step, NestedLoopStep):
            join_var += 1
            if first_join_mark is None:
                first_join_mark = (len(body), indent)
            var = f"r{join_var}"
            table = f"_tbl{step.step_id}"
            prologue.append(
                f"    {table} = runtime.broadcast_tables[{step.step_id}]")
            if not dedup:
                emit(f"for {var} in {table}:", indent)
            else:
                clauses.append(f"for {var} in {table}")
            offset, arity = _nested_segment(term, layout, namer)
            namer.add_segment(offset, arity, var, raw=False)
            indent += 1
            if step.predicate is not None:
                conjuncts = _nested_predicate_exprs(term, step)
                if conjuncts is None:
                    return None
                source = " and ".join(
                    _expr_source(c, layout, namer) for c in conjuncts)
                if dedup:
                    clauses.append(f"if ({source})")
                else:
                    emit(f"if not ({source}):", indent)
                    emit("    continue", indent)
            continue
        return None  # unknown step kind

    # Projection with normalization.  Under the kernel layer, parts that
    # read only the delta row are invariant across the join loops and are
    # hoisted to just before the first join (totalize patches ``d``
    # mid-body, so its presence disables the hoist).
    hoist = (kernels and not dedup and first_join_mark is not None
             and not has_totalize)
    delta_lo = term.delta_offset
    delta_hi = delta_lo + _delta_arity(term, layout)
    hoisted: list[str] = []
    projection_parts = []
    for i, expr in enumerate(rule.projections):
        source = _expr_source(expr, layout, namer)
        agg = aggregates[i] if i < len(aggregates) else None
        if agg is not None and agg.name == "count":
            env[f"_norm{i}"] = agg.normalize
            source = f"_norm{i}({source})"
        if hoist and _is_delta_only(expr, layout, delta_lo, delta_hi):
            name = f"_p{i}"
            hoisted.append("    " * first_join_mark[1] + f"{name} = {source}")
            source = name
        projection_parts.append(source)
    if hoisted:
        body[first_join_mark[0]:first_join_mark[0]] = hoisted
    if dedup:
        if term.negate or any(a is not None for a in aggregates):
            return None
        # One comprehension for the whole round: the loop machinery runs
        # in C, leaving only the probe and tuple build per derived row.
        row = f"({', '.join(projection_parts)},)"
        comp = " ".join(
            ["for d in delta_rows"]
            + ([f"if {prefilter_src}"] if prefilter_src is not None else [])
            + clauses)
        lines = ["def _term(delta_rows, partition, runtime):"]
        lines += prologue
        lines.append("    _E = ()")
        lines.append(f"    return [{row} {comp}]")
        source_text = "\n".join(lines)
    else:
        emit(f"_append(({', '.join(projection_parts)},))", indent)
        header = ["def _term(delta_rows, partition, runtime):"]
        header += prologue
        header.append("    _out = []")
        header.append("    _append = _out.append")
        header.append("    for d in delta_rows:")
        if prefilter_src is not None:
            header.append(f"        if not {prefilter_src}:")
            header.append("            continue")
        source_text = "\n".join(header + body + ["    return _out"])

    env["_build_state_table"] = _build_state_table
    try:
        code = compile(source_text, f"<rasql-codegen:{term.view}>", "exec")
        exec(code, env)
    except SyntaxError:
        return None
    fn = env["_term"]
    fn._generated_source = source_text
    return fn


def _build_state_table(rows: list[tuple], key_positions: tuple[int, ...]) -> dict:
    """Runtime helper: hash table over raw state rows for generated code."""
    table: dict = {}
    if len(key_positions) == 1:
        k = key_positions[0]
        for row in rows:
            table.setdefault(row[k], []).append(row)
    else:
        for row in rows:
            key = tuple(row[p] for p in key_positions)
            table.setdefault(key, []).append(row)
    return table


# ---------------------------------------------------------------------------
# step metadata recovery (the physical steps don't carry their AST origin,
# so codegen re-derives what it needs from the rule plan)
# ---------------------------------------------------------------------------


def _is_delta_only(expr: ast.Expr, layout: Layout, lo: int, hi: int) -> bool:
    """True when *expr* reads at least one delta slot and nothing else."""
    slots = [layout.slot_of(node) for node in expr.walk()
             if isinstance(node, ast.ColumnRef)]
    return bool(slots) and all(lo <= s < hi for s in slots)


def _delta_arity(term: CompiledTerm, layout: Layout) -> int:
    for binding, columns in layout.bindings:
        if layout.offsets[binding.lower()] == term.delta_offset:
            return len(columns)
    raise PlanningError("codegen: cannot locate delta segment")


def _step_arity(step: HashJoinStep, layout: Layout) -> int:
    # The build slots identify the segment; find the binding containing them.
    slot = step.build_slots[0]
    for binding, columns in layout.bindings:
        offset = layout.offsets[binding.lower()]
        if offset <= slot < offset + len(columns):
            return len(columns)
    raise PlanningError("codegen: cannot locate build segment")


def _nested_segment(term: CompiledTerm, layout: Layout,
                    namer: _SlotNamer) -> tuple[int, int]:
    """The next unbound segment (a nested-loop step binds exactly one)."""
    bound = set()
    for span, _, _ in namer.segments:
        bound.update(span)
    for binding, columns in layout.bindings:
        offset = layout.offsets[binding.lower()]
        span = range(offset, offset + len(columns))
        if not set(span) <= bound:
            return offset, len(columns)
    raise PlanningError("codegen: no unbound segment for nested loop")


def _nested_predicate_exprs(term: CompiledTerm,
                            step: NestedLoopStep) -> list[ast.Expr] | None:
    """Recover the theta conjuncts fused into a nested-loop step.

    The planner conjoins them into one compiled predicate; for codegen we
    re-split from the rule's residual list: the conjuncts of a nested-loop
    step are exactly those the interpreted planner consumed at that point.
    Rather than replicating the consumption order, we simply take all
    residual conjuncts of the rule — for single-nested-loop rules (the only
    shape the corpus produces) this is identical.
    """
    rule = term.rule
    nested_loops = sum(isinstance(s, NestedLoopStep) for s in term.steps)
    filters = sum(isinstance(s, FilterStep) for s in term.steps)
    if nested_loops != 1 or filters != 0:
        return None
    return list(rule.join.residual)


def _filter_source(step: FilterStep, layout: Layout,
                   namer: _SlotNamer) -> str | None:
    """Recover a FilterStep's conjunct from its recorded SQL text."""
    if not step.sql:
        return None
    from repro.core.parser import Parser

    try:
        expr = Parser(step.sql).parse_expr()
    except Exception:
        return None
    try:
        return _expr_source(expr, layout, namer)
    except PlanningError:
        return None


def _fix_hash_join_segment(step: HashJoinStep, layout: Layout) -> int:
    slot = step.build_slots[0]
    for binding, columns in layout.bindings:
        offset = layout.offsets[binding.lower()]
        if offset <= slot < offset + len(columns):
            return offset
    raise PlanningError("codegen: cannot locate build segment")


def grouped_dedup_spec(
        term: CompiledTerm,
        aggregates: tuple[AggregateFunction | None, ...],
) -> GroupedDedupSpec | None:
    """Recognize the column-decomposed fixpoint shape, if *term* has it.

    The shape is a single broadcast hash join probed by delta columns,
    projecting delta-only parts followed by exactly one build column
    (transitive closure's ``tc(x, z), edge(z, y) -> (x, y)`` is the
    canonical instance).  The decomposed driver exploits it by keeping
    the member set as ``prefix -> {last column}`` and deduplicating
    whole adjacency sets at C speed; duplicate-heavy fixpoints never
    build (or hash) the duplicate row tuples at all.
    """
    rule = term.rule
    if rule is None or rule.layout is None:
        return None
    if term.negate or any(a is not None for a in aggregates):
        return None
    if term.delta_prefilter is not None:
        return None
    if len(term.steps) != 1:
        return None
    step = term.steps[0]
    if not isinstance(step, HashJoinStep) or step.source != "broadcast":
        return None
    layout = rule.layout
    lo = term.delta_offset
    hi = lo + _delta_arity(term, layout)
    probe = []
    for slot in step.probe_slots:
        if not lo <= slot < hi:
            return None
        probe.append(slot - lo)
    namer = _SlotNamer(lo, hi - lo)
    namer.add_segment(_fix_hash_join_segment(step, layout),
                      _step_arity(step, layout), "r", False)
    projections = rule.projections
    if not projections:
        return None
    prefix = []
    for expr in projections[:-1]:
        if not isinstance(expr, ast.ColumnRef):
            return None
        slot = layout.slot_of(expr)
        if not lo <= slot < hi:
            return None
        prefix.append(slot - lo)
    last = projections[-1]
    if not isinstance(last, ast.ColumnRef):
        return None
    last_slot = layout.slot_of(last)
    if lo <= last_slot < hi:
        return None
    ref = namer.ref(last_slot)  # "r[<bucket row index>]"
    return GroupedDedupSpec(step_id=step.step_id,
                            probe=tuple(probe),
                            prefix=tuple(prefix),
                            build_index=int(ref[2:-1]))


def attach_generated_code(term: CompiledTerm,
                          aggregates: tuple[AggregateFunction | None, ...],
                          kernels: bool = False) -> bool:
    """Try to attach a generated function to *term*; returns success.

    With ``kernels`` the kernel-layer specializations are applied, and —
    for aggregate-free, non-negated terms — the inline-dedup variant is
    additionally generated onto ``term.codegen_dedup_fn`` (consumed by
    the decomposed set-fixpoint driver).
    """
    try:
        fn = generate_term_function(term, aggregates, kernels=kernels)
    except PlanningError:
        fn = None
    if fn is None:
        return False
    term.codegen_fn = fn
    if kernels:
        try:
            term.codegen_dedup_fn = generate_term_function(
                term, aggregates, kernels=True, dedup=True)
        except PlanningError:
            term.codegen_dedup_fn = None
        try:
            term.grouped_spec = grouped_dedup_spec(term, aggregates)
        except PlanningError:
            term.grouped_spec = None
    return True
