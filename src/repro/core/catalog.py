"""The session catalog: registered base tables and materialized views."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import AnalysisError
from repro.relation import Relation


class Catalog:
    """Name → :class:`Relation` registry with case-insensitive lookup.

    Two monotone epochs make the catalog cacheable from the outside
    (``repro.serving`` keys its plan and result caches on them):

    - :attr:`version` bumps on any *schema* change — registering or
      replacing a table.  Cached plans (name resolution, column binding)
      are valid exactly as long as it holds still.
    - :attr:`data_version` bumps on any *visible* change, schema or
      rows (:meth:`append_rows` / :meth:`note_mutation`).  Cached query
      results are valid exactly as long as it holds still.
    """

    def __init__(self):
        self._tables: dict[str, Relation] = {}
        self.version = 0
        self.data_version = 0

    def register(self, name: str, columns: Sequence[str],
                 rows: Iterable[Sequence] | None = None) -> Relation:
        """Register (or replace) a base table and return it."""
        relation = Relation(name, columns, rows)
        self._tables[name.lower()] = relation
        self.version += 1
        self.data_version += 1
        return relation

    def register_relation(self, relation: Relation) -> None:
        self._tables[relation.name.lower()] = relation
        self.version += 1
        self.data_version += 1

    def append_rows(self, name: str, rows: Iterable[Sequence]) -> int:
        """Append validated rows to a registered table (data change only).

        The schema stays fixed, so cached *plans* survive; cached
        *results* are invalidated through :attr:`data_version`.  Returns
        the number of rows appended (0 leaves both epochs untouched).
        """
        relation = self.get(name)
        new_rows = [tuple(r) for r in rows]
        if not new_rows:
            return 0
        for row in new_rows:
            if len(row) != len(relation.columns):
                raise AnalysisError(
                    f"row {row!r} does not match {name!r} schema "
                    f"{relation.columns}")
        relation.rows.extend(new_rows)
        self.data_version += 1
        return len(new_rows)

    def note_mutation(self) -> None:
        """Record an out-of-band row mutation (rows changed in place)."""
        self.data_version += 1

    def get(self, name: str) -> Relation:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise AnalysisError(f"unknown table {name!r} (registered: "
                                f"{sorted(self._tables)})") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def schema_of(self, name: str) -> tuple[str, ...]:
        return self.get(name).columns

    def names(self) -> list[str]:
        return sorted(self._tables)
