"""The session catalog: registered base tables and materialized views."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import AnalysisError
from repro.relation import Relation


class Catalog:
    """Name → :class:`Relation` registry with case-insensitive lookup."""

    def __init__(self):
        self._tables: dict[str, Relation] = {}

    def register(self, name: str, columns: Sequence[str],
                 rows: Iterable[Sequence] | None = None) -> Relation:
        """Register (or replace) a base table and return it."""
        relation = Relation(name, columns, rows)
        self._tables[name.lower()] = relation
        return relation

    def register_relation(self, relation: Relation) -> None:
        self._tables[relation.name.lower()] = relation

    def get(self, name: str) -> Relation:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise AnalysisError(f"unknown table {name!r} (registered: "
                                f"{sorted(self._tables)})") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def schema_of(self, name: str) -> tuple[str, ...]:
        return self.get(name).columns

    def names(self) -> list[str]:
        return sorted(self._tables)
