"""Admission control: bound concurrent queries and reserved memory.

A production RaSQL deployment shares its Spark cluster between users; a
query that cannot possibly fit should be rejected *before* it claims
executors, and a burst of queries should queue rather than thrash the
memory manager.  :class:`QueryGovernor` models both policies for the
simulated cluster:

- at most ``max_concurrent`` queries hold admission *tickets* at once;
- up to ``max_queue`` further queries wait in a FIFO queue, each charging
  ``queue_wait_s`` simulated seconds per slot ahead of it;
- beyond that — or when a query's estimated memory reservation would push
  the total over ``max_reserved_bytes`` — admission fails with
  :class:`repro.errors.AdmissionRejectedError`.

The simulator executes queries one at a time, so "concurrent" here means
tickets that are *held*: a caller that acquires tickets without releasing
them (a session running overlapping incremental views, or a test) exerts
back-pressure on later queries exactly like long-running jobs would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AdmissionRejectedError


@dataclass
class AdmissionTicket:
    """Proof of admission for one query; release it when the query ends."""

    label: str
    reserved_bytes: int
    queued: bool = False
    released: bool = field(default=False, init=False)


class QueryGovernor:
    """Slots + queue + reserved-memory cap for one :class:`RaSQLContext`.

    metrics is any object with ``inc(name, value)`` / ``advance(seconds,
    label=...)`` — normally the cluster's
    :class:`repro.engine.metrics.MetricsRegistry`, so admission decisions
    show up as ``queries_admitted`` / ``queries_queued`` /
    ``queries_rejected`` counters and queue time is charged to the
    simulated clock under the ``admission-wait`` label.
    """

    def __init__(self, max_concurrent: int = 4, max_queue: int = 4,
                 max_reserved_bytes: int | None = None,
                 queue_wait_s: float = 0.25, metrics=None):
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {max_concurrent}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if max_reserved_bytes is not None and max_reserved_bytes < 1:
            raise ValueError(
                f"max_reserved_bytes must be positive, got "
                f"{max_reserved_bytes}")
        if queue_wait_s < 0:
            raise ValueError(
                f"queue_wait_s must be >= 0, got {queue_wait_s}")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.max_reserved_bytes = max_reserved_bytes
        self.queue_wait_s = queue_wait_s
        self.metrics = metrics
        self.active: list[AdmissionTicket] = []

    # ------------------------------------------------------------------

    @property
    def reserved_bytes(self) -> int:
        return sum(t.reserved_bytes for t in self.active)

    def admit(self, label: str, estimated_bytes: int = 0) -> AdmissionTicket:
        """Admit a query, queueing or rejecting it as policy dictates."""
        if (self.max_reserved_bytes is not None
                and self.reserved_bytes + estimated_bytes
                > self.max_reserved_bytes):
            self._count("queries_rejected")
            raise AdmissionRejectedError(
                f"query {label!r} rejected: reserving "
                f"{estimated_bytes} bytes would push total reservations to "
                f"{self.reserved_bytes + estimated_bytes} bytes, over the "
                f"governor's max_reserved_bytes="
                f"{self.max_reserved_bytes}; wait for running queries to "
                f"finish or raise the cap",
                label=label, reason="memory",
                active=len(self.active), reserved_bytes=self.reserved_bytes)

        backlog = len(self.active) - self.max_concurrent
        queued = False
        if backlog >= 0:
            # All slots taken: this query joins the queue behind `backlog`
            # already-queued queries — if the queue has room.
            if backlog >= self.max_queue:
                self._count("queries_rejected")
                raise AdmissionRejectedError(
                    f"query {label!r} rejected: {self.max_concurrent} "
                    f"queries running and {backlog} queued "
                    f"(max_queue={self.max_queue}); retry later or raise "
                    f"the governor's limits",
                    label=label, reason="concurrency",
                    active=len(self.active),
                    reserved_bytes=self.reserved_bytes)
            queued = True
            self._count("queries_queued")
            if self.metrics is not None and self.queue_wait_s > 0:
                self.metrics.advance(self.queue_wait_s * (backlog + 1),
                                     label="admission-wait")

        ticket = AdmissionTicket(label, estimated_bytes, queued=queued)
        self.active.append(ticket)
        self._count("queries_admitted")
        return ticket

    def release(self, ticket: AdmissionTicket) -> None:
        """Return a ticket's slot and reservation (idempotent)."""
        if ticket.released:
            return
        ticket.released = True
        try:
            self.active.remove(ticket)
        except ValueError:
            pass

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)

    def report(self) -> dict:
        return {
            "active": len(self.active),
            "reserved_bytes": self.reserved_bytes,
            "max_concurrent": self.max_concurrent,
            "max_queue": self.max_queue,
            "max_reserved_bytes": self.max_reserved_bytes,
        }
