"""Admission control: bound concurrent queries and reserved memory.

A production RaSQL deployment shares its Spark cluster between users; a
query that cannot possibly fit should be rejected *before* it claims
executors, and a burst of queries should queue rather than thrash the
memory manager.  :class:`QueryGovernor` models both policies for the
simulated cluster:

- at most ``max_concurrent`` queries hold admission *slots* at once;
- up to ``max_queue`` further queries wait in a FIFO queue, each charging
  ``queue_wait_s`` simulated seconds per slot ahead of it;
- beyond that — or when a query's estimated memory reservation would push
  the total over ``max_reserved_bytes`` — admission fails with
  :class:`repro.errors.AdmissionRejectedError`.

Releasing a ticket promotes queued waiters in FIFO order into the freed
slots, re-checking the reserved-memory cap per promotion, so occupancy
gauges (``report()``) and the ``queries_queued`` / ``admission-wait``
accounting stay consistent through a burst that queues and then drains.

Two kinds of caller share this class:

- the synchronous :meth:`repro.core.context.RaSQLContext.sql` path runs
  queries one at a time; a *queued* ticket there models waiting behind
  held slots (overlapping incremental views, a test pinning slots) by
  charging simulated wait time, then proceeds;
- :class:`repro.serving.QueryService` holds many tickets in flight and
  only dispatches requests whose tickets occupy a slot
  (``ticket.waiting`` is ``False``), so promotions gate execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AdmissionRejectedError


@dataclass
class AdmissionTicket:
    """Proof of admission for one query; release it when the query ends.

    ``queued`` records whether the ticket ever waited in the queue (it
    stays ``True`` after promotion — latency accounting keys off it);
    ``waiting`` is the live state: ``True`` while the ticket sits in the
    governor's FIFO queue, flipped to ``False`` on promotion to a slot.
    """

    label: str
    reserved_bytes: int
    queued: bool = False
    waiting: bool = field(default=False, init=False)
    released: bool = field(default=False, init=False)
    #: Simulated seconds charged for the queue at admission time
    #: (surfaces in EXPLAIN ANALYZE's admission line).
    wait_s: float = field(default=0.0, init=False)


class QueryGovernor:
    """Slots + FIFO queue + reserved-memory cap for one session/service.

    metrics is any object with ``inc(name, value)`` / ``advance(seconds,
    label=...)`` — normally the cluster's
    :class:`repro.engine.metrics.MetricsRegistry`, so admission decisions
    show up as ``queries_admitted`` / ``queries_queued`` /
    ``queries_promoted`` / ``queries_rejected`` counters and queue time
    is charged to the simulated clock under the ``admission-wait`` label.
    """

    def __init__(self, max_concurrent: int = 4, max_queue: int = 4,
                 max_reserved_bytes: int | None = None,
                 queue_wait_s: float = 0.25, metrics=None):
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {max_concurrent}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if max_reserved_bytes is not None and max_reserved_bytes < 1:
            raise ValueError(
                f"max_reserved_bytes must be positive, got "
                f"{max_reserved_bytes}")
        if queue_wait_s < 0:
            raise ValueError(
                f"queue_wait_s must be >= 0, got {queue_wait_s}")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.max_reserved_bytes = max_reserved_bytes
        self.queue_wait_s = queue_wait_s
        self.metrics = metrics
        #: Tickets occupying slots (never more than ``max_concurrent``).
        self.active: list[AdmissionTicket] = []
        #: Tickets waiting for a slot, in FIFO admission order.
        self.waiting: list[AdmissionTicket] = []

    # ------------------------------------------------------------------

    @property
    def reserved_bytes(self) -> int:
        """Total reservation held by slotted *and* queued tickets."""
        return (sum(t.reserved_bytes for t in self.active)
                + sum(t.reserved_bytes for t in self.waiting))

    @property
    def active_reserved_bytes(self) -> int:
        """Reservation held by slotted tickets only (promotion check)."""
        return sum(t.reserved_bytes for t in self.active)

    def admit(self, label: str, estimated_bytes: int = 0) -> AdmissionTicket:
        """Admit a query, queueing or rejecting it as policy dictates."""
        if (self.max_reserved_bytes is not None
                and self.reserved_bytes + estimated_bytes
                > self.max_reserved_bytes):
            self._count("queries_rejected")
            # Retry-After hint: memory frees as admitted work drains, so
            # scale the per-slot queue wait by everything ahead of us.
            retry_after = self.queue_wait_s * max(
                1, len(self.active) + len(self.waiting))
            raise AdmissionRejectedError(
                f"query {label!r} rejected: reserving "
                f"{estimated_bytes} bytes would push total reservations to "
                f"{self.reserved_bytes + estimated_bytes} bytes, over the "
                f"governor's max_reserved_bytes="
                f"{self.max_reserved_bytes}; retry after ~{retry_after:.2f}s "
                f"(simulated) or raise the cap",
                label=label, reason="memory",
                active=len(self.active), reserved_bytes=self.reserved_bytes,
                retry_after_s=retry_after)

        if len(self.active) < self.max_concurrent and not self.waiting:
            ticket = AdmissionTicket(label, estimated_bytes)
            self.active.append(ticket)
            self._count("queries_admitted")
            return ticket

        # All slots taken (or a FIFO queue already formed): this query
        # joins the queue behind `backlog` earlier waiters — if the queue
        # has room.
        backlog = len(self.waiting)
        if backlog >= self.max_queue:
            self._count("queries_rejected")
            # Retry-After hint: one queue slot frees per promotion, so a
            # shed query can come back after the head of the queue moves.
            retry_after = self.queue_wait_s * (backlog + 1)
            raise AdmissionRejectedError(
                f"query {label!r} rejected: {len(self.active)} "
                f"queries running and {backlog} queued "
                f"(max_queue={self.max_queue}); retry after "
                f"~{retry_after:.2f}s (simulated) or raise the governor's "
                f"limits",
                label=label, reason="concurrency",
                active=len(self.active),
                reserved_bytes=self.reserved_bytes,
                retry_after_s=retry_after)
        ticket = AdmissionTicket(label, estimated_bytes, queued=True)
        ticket.waiting = True
        self.waiting.append(ticket)
        self._count("queries_admitted")
        self._count("queries_queued")
        ticket.wait_s = self.queue_wait_s * (backlog + 1)
        if self.metrics is not None and ticket.wait_s > 0:
            self.metrics.advance(ticket.wait_s, label="admission-wait")
        return ticket

    def release(self, ticket: AdmissionTicket) -> None:
        """Return a ticket's slot/queue entry and promote waiters (FIFO).

        Idempotent.  Every release re-runs promotion, so a burst that
        queued and then drains ends with ``active`` and ``waiting`` both
        empty and every waiter having been moved through a real slot.
        """
        if ticket.released:
            return
        ticket.released = True
        ticket.waiting = False
        try:
            self.active.remove(ticket)
        except ValueError:
            try:
                self.waiting.remove(ticket)
            except ValueError:
                pass
        self._promote()

    def _promote(self) -> None:
        """Move queue heads into free slots while policy allows it.

        FIFO order is strict: if the head does not fit under the
        reserved-memory cap (re-checked here, against *slotted*
        reservations only), later waiters do not jump it — they keep
        their admission order, exactly like a FIFO scheduler pool.
        """
        while self.waiting and len(self.active) < self.max_concurrent:
            head = self.waiting[0]
            if (self.max_reserved_bytes is not None
                    and self.active_reserved_bytes + head.reserved_bytes
                    > self.max_reserved_bytes):
                break
            self.waiting.pop(0)
            head.waiting = False
            self.active.append(head)
            self._count("queries_promoted")

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)

    def report(self) -> dict:
        return {
            "active": len(self.active),
            "waiting": len(self.waiting),
            "reserved_bytes": self.reserved_bytes,
            "max_concurrent": self.max_concurrent,
            "max_queue": self.max_queue,
            "max_reserved_bytes": self.max_reserved_bytes,
        }
