"""The RaSQL query library: every example of Sections 2, 4 and Appendix C/G.

Each entry records the query text, the base-table schemas it expects, and a
short description.  The texts are verbatim from the paper except for
documented touch-ups:

- *Party Attendance*: the paper's recursive ``attend`` branch reads
  ``SELECT Name, Ncount FROM cntfriends`` although ``attend`` has one
  column; we select only ``Name`` (the obvious intent).
- *SSSP/REACH/Count Paths* parameterize the source vertex via ``{source}``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QuerySpec:
    """A named query plus the base-table schemas it runs against."""

    name: str
    sql: str
    tables: dict[str, tuple[str, ...]]
    description: str = ""

    def formatted(self, **params) -> str:
        """Substitute parameters such as ``source`` into the SQL text."""
        return self.sql.format(**params) if params else self.sql


_EDGE_W = {"edge": ("Src", "Dst", "Cost")}
_EDGE = {"edge": ("Src", "Dst")}


BOM_STRATIFIED = QuerySpec(
    name="bom_stratified",
    description="Q1: Days-till-delivery, stratified (aggregate after recursion)",
    tables={"assbl": ("Part", "SPart"), "basic": ("Part", "Days")},
    sql="""
WITH recursive waitfor(Part, Days) AS
  (SELECT Part, Days FROM basic) UNION
  (SELECT assbl.Part, waitfor.Days
   FROM assbl, waitfor
   WHERE assbl.SPart = waitfor.Part)
SELECT Part, max(Days) FROM waitfor GROUP BY Part
""")

BOM = QuerySpec(
    name="bom",
    description="Q2: Days-till-delivery with endo-max (aggregate in recursion)",
    tables={"assbl": ("Part", "SPart"), "basic": ("Part", "Days")},
    sql="""
WITH recursive waitfor(Part, max() AS Days) AS
  (SELECT Part, Days FROM basic) UNION
  (SELECT assbl.Part, waitfor.Days
   FROM assbl, waitfor
   WHERE assbl.SPart = waitfor.Part)
SELECT Part, Days FROM waitfor
""")

SSSP = QuerySpec(
    name="sssp",
    description="Example 1: single-source shortest paths",
    tables=_EDGE_W,
    sql="""
WITH recursive path(Dst, min() AS Cost) AS
  (SELECT {source}, 0) UNION
  (SELECT edge.Dst, path.Cost + edge.Cost
   FROM path, edge
   WHERE path.Dst = edge.Src)
SELECT Dst, Cost FROM path
""")

CC = QuerySpec(
    name="cc",
    description="Example 2: connected components via min-label propagation",
    tables=_EDGE,
    sql="""
WITH recursive cc(Src, min() AS CmpId) AS
  (SELECT Src, Src FROM edge) UNION
  (SELECT edge.Dst, cc.CmpId FROM cc, edge
   WHERE cc.Src = edge.Src)
SELECT count(distinct cc.CmpId) FROM cc
""")

CC_LABELS = QuerySpec(
    name="cc_labels",
    description="Connected components, returning each node's component id",
    tables=_EDGE,
    sql="""
WITH recursive cc(Src, min() AS CmpId) AS
  (SELECT Src, Src FROM edge) UNION
  (SELECT edge.Dst, cc.CmpId FROM cc, edge
   WHERE cc.Src = edge.Src)
SELECT Src, CmpId FROM cc
""")

COUNT_PATHS = QuerySpec(
    name="count_paths",
    description="Example 3: number of paths from a source to every node",
    tables=_EDGE,
    sql="""
WITH recursive cpaths(Dst, sum() AS Cnt) AS
  (SELECT {source}, 1) UNION
  (SELECT edge.Dst, cpaths.Cnt FROM cpaths, edge
   WHERE cpaths.Dst = edge.Src)
SELECT Dst, Cnt FROM cpaths
""")

MANAGEMENT = QuerySpec(
    name="management",
    description="Example 4: employees managed directly or indirectly",
    tables={"report": ("Emp", "Mgr")},
    sql="""
WITH recursive empCount(Mgr, count() AS Cnt) AS
  (SELECT report.Emp, 1 FROM report) UNION
  (SELECT report.Mgr, empCount.Cnt
   FROM empCount, report
   WHERE empCount.Mgr = report.Emp)
SELECT Mgr, Cnt FROM empCount
""")

MLM_BONUS = QuerySpec(
    name="mlm_bonus",
    description="Example 5: multi-level-marketing bonus",
    tables={"sales": ("M", "P"), "sponsor": ("M1", "M2")},
    sql="""
WITH recursive bonus(M, sum() AS B) AS
  (SELECT M, P*0.1 FROM sales) UNION
  (SELECT sponsor.M1, bonus.B*0.5 FROM bonus, sponsor
   WHERE bonus.M = sponsor.M2)
SELECT M, B FROM bonus
""")

INTERVAL_COALESCE = QuerySpec(
    name="interval_coalesce",
    description="Example 6: smallest set of intervals covering the input",
    tables={"inter": ("S", "E")},
    sql="""
CREATE VIEW lstart(T) AS
  (SELECT a.S FROM inter a, inter b
   WHERE a.S <= b.E
   GROUP BY a.S HAVING a.S = min(b.S));
WITH recursive coal(S, max() AS E) AS
  (SELECT lstart.T, inter.E FROM lstart, inter
   WHERE lstart.T = inter.S) UNION
  (SELECT coal.S, inter.E FROM coal, inter
   WHERE coal.S <= inter.S AND inter.S <= coal.E)
SELECT S, E FROM coal
""")

PARTY_ATTENDANCE = QuerySpec(
    name="party_attendance",
    description="Example 7: who attends the party (mutual recursion)",
    tables={"organizer": ("OrgName",), "friend": ("Pname", "Fname")},
    sql="""
WITH recursive attend(Person) AS
  (SELECT OrgName FROM organizer) UNION
  (SELECT Name FROM cntfriends
   WHERE Ncount >= 3),
recursive cntfriends(Name, count() AS Ncount) AS
  (SELECT friend.Fname, friend.Pname
   FROM attend, friend
   WHERE attend.Person = friend.Pname)
SELECT Person FROM attend
""")

COMPANY_CONTROL = QuerySpec(
    name="company_control",
    description="Example 8: transitive company control (mutual recursion)",
    tables={"shares": ("By", "Of", "Percent")},
    sql="""
WITH recursive cshares(ByCom, OfCom, sum() AS Tot) AS
  (SELECT By, Of, Percent FROM shares) UNION
  (SELECT control.Com1, cshares.OfCom, cshares.Tot
   FROM control, cshares
   WHERE control.Com2 = cshares.ByCom),
recursive control(Com1, Com2) AS
  (SELECT ByCom, OfCom FROM cshares WHERE Tot > 50)
SELECT ByCom, OfCom, Tot FROM cshares
""")

SAME_GENERATION = QuerySpec(
    name="same_generation",
    description="Example 9 (Appendix C): same-generation pairs",
    tables={"rel": ("Parent", "Child")},
    sql="""
WITH recursive sg(X, Y) AS
  (SELECT a.Child, b.Child FROM rel a, rel b
   WHERE a.Parent = b.Parent AND a.Child <> b.Child)
  UNION
  (SELECT a.Child, b.Child FROM rel a, sg, rel b
   WHERE a.Parent = sg.X AND b.Parent = sg.Y)
SELECT X, Y FROM sg
""")

REACH = QuerySpec(
    name="reach",
    description="Example 10 (Appendix C): BFS reachability from a source",
    tables=_EDGE,
    sql="""
WITH recursive reach(Dst) AS
  (SELECT {source}) UNION
  (SELECT edge.Dst FROM reach, edge
   WHERE reach.Dst = edge.Src)
SELECT Dst FROM reach
""")

APSP = QuerySpec(
    name="apsp",
    description="Example 11 (Appendix C): all-pairs shortest paths",
    tables=_EDGE_W,
    sql="""
WITH recursive path(Src, Dst, min() AS Cost) AS
  (SELECT Src, Dst, Cost FROM edge) UNION
  (SELECT path.Src, edge.Dst, path.Cost + edge.Cost
   FROM path, edge WHERE path.Dst = edge.Src)
SELECT Src, Dst, Cost FROM path
""")

TC = QuerySpec(
    name="tc",
    description="Transitive closure (Section 6)",
    tables=_EDGE,
    sql="""
WITH recursive tc(Src, Dst) AS
  (SELECT Src, Dst FROM edge) UNION
  (SELECT tc.Src, edge.Dst FROM tc, edge
   WHERE tc.Dst = edge.Src)
SELECT Src, Dst FROM tc
""")

ALL_QUERIES: tuple[QuerySpec, ...] = (
    BOM_STRATIFIED, BOM, SSSP, CC, CC_LABELS, COUNT_PATHS, MANAGEMENT,
    MLM_BONUS, INTERVAL_COALESCE, PARTY_ATTENDANCE, COMPANY_CONTROL,
    SAME_GENERATION, REACH, APSP, TC,
)

BY_NAME = {q.name: q for q in ALL_QUERIES}


def get_query(name: str) -> QuerySpec:
    """Look up a library query by name."""
    try:
        return BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown query {name!r}; "
                       f"available: {sorted(BY_NAME)}") from None
