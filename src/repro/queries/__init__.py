"""The paper's RaSQL query library (Sections 2, 4, Appendix C)."""

from repro.queries.library import ALL_QUERIES, BY_NAME, QuerySpec, get_query

__all__ = ["ALL_QUERIES", "BY_NAME", "QuerySpec", "get_query"]
