"""Row canonicalization for cross-engine result comparison.

Different engines agree on query *semantics* but not on value
*presentation*: SQLite reports ``sum(1.0 + 2.0)`` as REAL ``3.0`` where
the engine's Python executor may hold int ``3``; booleans come back as
``0``/``1``; row order is unspecified; duplicate rows matter (multiset
semantics).  This module maps both sides into one canonical space so a
diff only fires on genuine divergence:

- booleans → ints (SQLite has no bool storage class),
- floats → rounded to 9 decimal places, then demoted to int when
  integral (REAL ``1.0`` ≡ ``1``),
- rows → tuples, compared as a multiset (``collections.Counter``),
- ordering for display → ``repr``-keyed sort, the same total order
  :meth:`repro.relation.Relation.sorted` uses.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

#: Float comparison granularity.  9 decimal places tolerates
#: accumulation-order differences between engines while still catching
#: any real numeric bug in the library workloads (integer-weighted
#: graphs and one-decimal bonuses).
FLOAT_DECIMALS = 9


def canonical_value(value: object) -> object:
    """Map one cell into the canonical comparison space."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float):
        rounded = round(value, FLOAT_DECIMALS)
        if rounded.is_integer():
            return int(rounded)
        return rounded
    return value


def canonical_rows(rows: Iterable[Sequence],
                   projection: Sequence[int] | None = None) -> list[tuple]:
    """Canonicalize *rows* into a repr-sorted list of tuples.

    *projection*, when given, reorders each row's cells by index first
    (the output of :func:`match_columns`), so a backend's column order
    can be aligned with the engine schema before comparing.
    """
    out = []
    for row in rows:
        cells = tuple(row[i] for i in projection) if projection is not None \
            else tuple(row)
        out.append(tuple(canonical_value(cell) for cell in cells))
    out.sort(key=repr)
    return out


def match_columns(expected: Sequence[str],
                  actual: Sequence[str]) -> tuple[int, ...]:
    """Index into *actual* for each *expected* column name.

    Matching is case-insensitive, mirroring
    :meth:`repro.relation.Schema.index_of`; duplicate names pair up
    positionally (first expected duplicate takes the first actual one).
    Raises :class:`KeyError` when a name is missing and
    :class:`ValueError` on arity mismatch.
    """
    if len(expected) != len(actual):
        raise ValueError(f"column count mismatch: expected {len(expected)} "
                         f"({list(expected)}), got {len(actual)} "
                         f"({list(actual)})")
    pools: dict[str, list[int]] = {}
    for i, name in enumerate(actual):
        pools.setdefault(name.lower(), []).append(i)
    projection = []
    for name in expected:
        pool = pools.get(name.lower())
        if not pool:
            raise KeyError(f"column {name!r} not found in {list(actual)}")
        projection.append(pool.pop(0))
    return tuple(projection)


def multiset_diff(left: Iterable[tuple],
                  right: Iterable[tuple]) -> tuple[list[tuple], list[tuple]]:
    """Rows only in *left* and only in *right*, duplicate-aware.

    Both inputs should already be canonical (:func:`canonical_rows`).
    Returns ``(missing_from_right, missing_from_left)``, each repr-sorted
    with one entry per excess occurrence.
    """
    left_counts = Counter(left)
    right_counts = Counter(right)
    only_left = list((left_counts - right_counts).elements())
    only_right = list((right_counts - left_counts).elements())
    only_left.sort(key=repr)
    only_right.sort(key=repr)
    return only_left, only_right
