"""Cross-engine compilation: lower analyzed RaSQL plans to standard SQL.

RaSQL's aggregates-in-recursion extension is, by the PreM property
(Section 3), *semantically* plain SQL: whenever the aggregate is
pre-mappable to the recursive rules, the query has an equivalent vanilla
``WITH RECURSIVE`` form — recurse over the un-aggregated twin relation,
apply the aggregate in an outer query.  This package performs exactly
that lowering and turns it into a permanent differential oracle:

- :mod:`repro.compile.dialect` — target-dialect descriptors
  (sqlite / duckdb / bigquery: quoting, count normalization).
- :mod:`repro.compile.emitter` — ``compile_script``: analyzed plan
  (the exact parse → analyze → optimize output ``PlanCache`` memoizes)
  → ``WITH RECURSIVE`` SQL, including the PreM twin-form transformation
  for aggregated recursive views.  Queries with no twin form (mutual
  recursion, non-linear accumulators) raise
  :class:`repro.errors.InexpressibleQueryError` with the reason.
- :mod:`repro.compile.backends` — executing backends: ``sqlite3``
  (stdlib, always available) and DuckDB (optional, auto-skipped when
  the package is missing).  BigQuery is a string emitter only.
- :mod:`repro.compile.canonical` — row canonicalization (numeric
  affinity, NULL ordering, multiset semantics) so results from foreign
  engines diff row-for-row against engine relations.
- :mod:`repro.compile.differential` — the harness: run a query on the
  RaSQL engine and on an external backend, canonicalize, and report the
  first divergence with the emitted SQL attached.

Nothing in the engine's serving/execution fast path imports this
package; it loads only for the ``compile``/``diff`` CLI subcommands,
the differential test suite, and explicit API use
(``tests/compile/test_fastpath.py`` pins that).
"""

from repro.compile.backends import DuckDBBackend, SQLiteBackend, duckdb_available
from repro.compile.canonical import (
    canonical_rows,
    canonical_value,
    match_columns,
    multiset_diff,
)
from repro.compile.dialect import BIGQUERY, DUCKDB, SQLITE, Dialect, get_dialect
from repro.compile.differential import DiffReport, diff_query
from repro.compile.emitter import CompiledQuery, compile_script, compile_sql

__all__ = [
    "BIGQUERY",
    "CompiledQuery",
    "DUCKDB",
    "DiffReport",
    "Dialect",
    "DuckDBBackend",
    "SQLITE",
    "SQLiteBackend",
    "canonical_rows",
    "canonical_value",
    "compile_script",
    "compile_sql",
    "diff_query",
    "duckdb_available",
    "get_dialect",
    "match_columns",
    "multiset_diff",
]
