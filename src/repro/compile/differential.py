"""The differential harness: engine vs. independent SQL oracle.

:func:`diff_query` runs a RaSQL script twice — natively on a
:class:`repro.RaSQLContext` and, via :mod:`repro.compile.emitter`, as
standard ``WITH RECURSIVE`` SQL on an external engine loaded with the
same catalog — then compares the canonicalized results as multisets and
reports the first divergence with the emitted SQL attached.

Three independent checks stack up per query:

1. **row diff** — the headline oracle: canonical multisets must match.
2. **depth convergence** — aggregate twin CTEs are truncated at the
   engine's iteration count plus a margin; the harness re-runs the twin
   at ``bound + 1`` on the same backend and requires an identical
   result, so the bound is verified rather than trusted.
3. **PreM admissibility** — for min/max twins the rewrite is only sound
   when the aggregate is pre-mappable; ``core.prem.check_prem``
   validates that on the live data (skipped with a note where the
   checker's single-clique preconditions don't apply, e.g. base rules
   driven by derived views).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.compile.backends import SQLiteBackend
from repro.compile.canonical import canonical_rows, multiset_diff
from repro.compile.dialect import SQLITE, Dialect
from repro.compile.emitter import compile_script
from repro.errors import AnalysisError, RaSQLError

#: Extra twin-CTE depth on top of the engine's observed iteration
#: count.  Twin derivation depth can exceed the engine's *semi-naive*
#: iteration count only through rule chaining inside one iteration,
#: which the margin covers with room to spare; the convergence check
#: (bound + 1) catches any case it would not.
DEPTH_MARGIN = 8

#: How many divergent rows to keep in the report.
MAX_DIVERGENCES = 10


@dataclass
class DiffReport:
    """Outcome of one engine-vs-oracle comparison."""

    label: str
    backend: str
    equal: bool
    engine_rows: int
    backend_rows: int
    #: Canonical rows the backend is missing / has in excess
    #: (duplicate-aware, truncated to :data:`MAX_DIVERGENCES`).
    missing_in_backend: list = field(default_factory=list)
    extra_in_backend: list = field(default_factory=list)
    sql: str = ""
    columns: tuple = ()
    depth_bound: int | None = None
    #: ``True``/``False`` when a twin was emitted, ``None`` otherwise.
    converged: bool | None = None
    #: "holds" / "violated: ..." / "skipped: ..." / "not-applicable".
    prem: str = "not-applicable"
    notes: tuple = ()

    @property
    def first_divergence(self) -> tuple | None:
        if self.missing_in_backend:
            return ("missing in backend", self.missing_in_backend[0])
        if self.extra_in_backend:
            return ("extra in backend", self.extra_in_backend[0])
        return None

    def summary(self) -> str:
        """Human-readable verdict; on divergence, attaches the SQL."""
        if self.equal and self.converged is not False:
            parts = [f"{self.label}: OK on {self.backend} "
                     f"({self.engine_rows} rows)"]
            if self.depth_bound is not None:
                parts.append(f"twin depth bound {self.depth_bound}, "
                             f"converged")
            if self.prem != "not-applicable":
                parts.append(f"PreM {self.prem}")
            return "; ".join(parts)
        lines = [f"{self.label}: DIVERGED on {self.backend} "
                 f"(engine {self.engine_rows} rows, "
                 f"backend {self.backend_rows} rows)"]
        if self.converged is False:
            lines.append(f"  twin did not converge at depth bound "
                         f"{self.depth_bound} (bound+1 changed the result)")
        kind_rows = self.first_divergence
        if kind_rows is not None:
            kind, row = kind_rows
            lines.append(f"  first divergence ({kind}): {row!r}")
            lines.append(f"  missing: {len(self.missing_in_backend)} shown, "
                         f"extra: {len(self.extra_in_backend)} shown")
        lines.append("  emitted SQL:")
        lines.extend("    " + line for line in self.sql.splitlines())
        return "\n".join(lines)


def catalog_tables(catalog) -> dict[str, tuple[list[str], list]]:
    """The catalog in ``check_prem``'s ``tables`` format."""
    return {name: (list(catalog.get(name).columns),
                   list(catalog.get(name).rows))
            for name in catalog.names()}


def diff_query(ctx, sql: str, *, backend=None, dialect: Dialect = SQLITE,
               config=None, label: str = "query",
               depth_margin: int = DEPTH_MARGIN,
               check_convergence: bool = True,
               check_admissibility: bool = True) -> DiffReport:
    """Run *sql* on the engine and on an external backend; compare.

    Raises :class:`repro.errors.InexpressibleQueryError` when the plan
    has no ``WITH RECURSIVE`` form — callers keep those on an explicit
    list rather than swallowing them.  The default backend is a fresh
    in-memory SQLite database, closed before returning; a caller-owned
    *backend* must arrive **unloaded** and is left open.
    """
    engine_result = ctx.sql(sql, config)
    iterations = ctx.last_run.iterations

    # Re-analyze through the same front half PlanCache memoizes; the
    # engine run above already validated the script, so this cannot
    # fail for new reasons.
    analyzed = ctx.analyze_query(sql, config)
    depth_bound = max(iterations, 1) + depth_margin
    compiled = compile_script(analyzed, dialect=dialect,
                              depth_bound=depth_bound)

    owned = backend is None
    if owned:
        backend = SQLiteBackend()
    try:
        backend.load(ctx.catalog)
        columns, rows = backend.execute(compiled.sql)

        engine_canonical = canonical_rows(engine_result.rows)
        backend_canonical = canonical_rows(rows)
        missing, extra = multiset_diff(engine_canonical, backend_canonical)

        converged = None
        if compiled.depth_bound is not None and check_convergence:
            deeper = compile_script(analyzed, dialect=dialect,
                                    depth_bound=depth_bound + 1)
            _, deeper_rows = backend.execute(deeper.sql)
            converged = (Counter(backend_canonical)
                         == Counter(canonical_rows(deeper_rows)))

        prem = "not-applicable"
        if check_admissibility and any(kind == "set"
                                       for _, _, kind in compiled.twins):
            prem = _prem_verdict(sql, ctx.catalog, max_steps=depth_bound)

        return DiffReport(
            label=label,
            backend=getattr(backend, "name", dialect.name),
            equal=not missing and not extra,
            engine_rows=len(engine_result.rows),
            backend_rows=len(rows),
            missing_in_backend=missing[:MAX_DIVERGENCES],
            extra_in_backend=extra[:MAX_DIVERGENCES],
            sql=compiled.sql,
            columns=compiled.columns,
            depth_bound=compiled.depth_bound,
            converged=converged,
            prem=prem,
            notes=compiled.notes,
        )
    finally:
        if owned:
            backend.close()


def _prem_verdict(sql: str, catalog, max_steps: int) -> str:
    """Run ``core.prem.check_prem`` and fold the outcome to a string.

    The checker has stricter preconditions than the emitter (exactly one
    single-view aggregated clique whose base rules drive from catalog
    tables); where they don't hold the verdict is ``skipped`` — the row
    diff and convergence check still stand on their own.
    """
    from repro.core.prem import check_prem

    try:
        report = check_prem(sql, catalog_tables(catalog),
                            max_steps=max_steps)
    except (AnalysisError, RaSQLError) as exc:
        return f"skipped: {exc}"
    if report.holds:
        return "holds"
    return f"violated: {report}"
