"""Executing backends for the differential oracle.

A backend owns one in-memory database: :meth:`load` mirrors a
:class:`repro.core.catalog.Catalog`'s base tables into it, and
:meth:`execute` runs emitted SQL, returning ``(columns, rows)``.

- :class:`SQLiteBackend` — the stdlib ``sqlite3`` module, always
  available; the default oracle on every CI run.
- :class:`DuckDBBackend` — optional: ``duckdb`` is imported lazily and
  :func:`duckdb_available` gates the tests, which *skip visibly* (never
  silently pass) when the package is absent.  No install is attempted.

Identifiers are always quoted on the DDL side, so catalog spellings —
including reserved words like the ``shares`` table's ``By``/``Of``
columns — round-trip exactly; emitted queries reference them unquoted
where legal, which both engines resolve case-insensitively.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable

from repro.core.catalog import Catalog
from repro.relation import Relation


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


class SQLiteBackend:
    """The stdlib oracle: one fresh in-memory SQLite database."""

    name = "sqlite"

    def __init__(self):
        self._connection = sqlite3.connect(":memory:")

    def load(self, catalog: Catalog) -> None:
        for table_name in catalog.names():
            self.load_relation(catalog.get(table_name))

    def load_relation(self, relation: Relation) -> None:
        columns = ", ".join(_quote(c) for c in relation.columns)
        self._connection.execute(
            f"CREATE TABLE {_quote(relation.name)} ({columns})")
        if relation.rows:
            placeholders = ", ".join("?" * len(relation.columns))
            self._connection.executemany(
                f"INSERT INTO {_quote(relation.name)} "
                f"VALUES ({placeholders})", relation.rows)
        self._connection.commit()

    def execute(self, sql: str) -> tuple[list[str], list[tuple]]:
        cursor = self._connection.execute(sql)
        columns = [d[0] for d in cursor.description or []]
        return columns, cursor.fetchall()

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def duckdb_available() -> bool:
    """True when the optional ``duckdb`` package can be imported."""
    try:
        import duckdb  # noqa: F401
    except ImportError:
        return False
    return True


def _duckdb_column_type(values: Iterable[object]) -> str:
    """Infer a DuckDB column type from the values present.

    DuckDB columns are typed (unlike SQLite's affinity), so the loader
    picks the narrowest type covering the data; empty or all-NULL
    columns default to VARCHAR, which is irrelevant to results (no
    value ever materializes from them).
    """
    saw_int = saw_float = saw_str = saw_bool = False
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            saw_bool = True
        elif isinstance(value, int):
            saw_int = True
        elif isinstance(value, float):
            saw_float = True
        else:
            saw_str = True
    if saw_str:
        return "VARCHAR"
    if saw_float:
        return "DOUBLE"
    if saw_int:
        return "BIGINT"
    if saw_bool:
        return "BOOLEAN"
    return "VARCHAR"


class DuckDBBackend:
    """Optional second oracle; construct only if :func:`duckdb_available`."""

    name = "duckdb"

    def __init__(self):
        import duckdb  # lazy: missing package must not break import

        self._connection = duckdb.connect(":memory:")

    def load(self, catalog: Catalog) -> None:
        for table_name in catalog.names():
            self.load_relation(catalog.get(table_name))

    def load_relation(self, relation: Relation) -> None:
        column_specs = []
        for i, column in enumerate(relation.columns):
            kind = _duckdb_column_type(row[i] for row in relation.rows)
            column_specs.append(f"{_quote(column)} {kind}")
        self._connection.execute(
            f"CREATE TABLE {_quote(relation.name)} "
            f"({', '.join(column_specs)})")
        if relation.rows:
            placeholders = ", ".join("?" * len(relation.columns))
            self._connection.executemany(
                f"INSERT INTO {_quote(relation.name)} "
                f"VALUES ({placeholders})", relation.rows)

    def execute(self, sql: str) -> tuple[list[str], list[tuple]]:
        cursor = self._connection.execute(sql)
        columns = [d[0] for d in cursor.description or []]
        return columns, cursor.fetchall()

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "DuckDBBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_backend(name: str):
    """CLI helper: instantiate a backend by dialect name."""
    if name == "sqlite":
        return SQLiteBackend()
    if name == "duckdb":
        if not duckdb_available():
            raise RuntimeError(
                "the optional 'duckdb' package is not installed; "
                "use --backend sqlite or install the extra")
        return DuckDBBackend()
    raise ValueError(f"no executing backend for dialect {name!r} "
                     f"(bigquery is emit-only)")
