"""Lower an analyzed RaSQL plan to standard ``WITH RECURSIVE`` SQL.

The input is the exact parse → analyze → optimize output that
``PlanCache`` memoizes (:meth:`repro.RaSQLContext.analyze_query`), so
whatever the optimizer did — magic-filter pushdown, conjunct
classification, constant folding — is compiled faithfully: FROM lists
come from ``JoinNode.inputs``, WHERE from scan filters + equi conjuncts
+ residual predicates, SELECT from the resolved head projections.

The one construct with no direct SQL:99 analogue is RaSQL's
aggregate-in-recursion.  By the PreM property it has an equivalent
vanilla form — the *un-aggregated twin*: recurse over raw tuples and
apply the aggregate in an outer query (Appendix G's
``prem_checking_query`` is the same rewrite executed natively).  The
emitter produces, per aggregated view ``v``:

- a twin CTE ``all_v(cols..., _depth)`` recursing without the
  aggregate.  ``_depth`` bounds derivation length: the un-aggregated
  tuple space can be infinite where the aggregated fixpoint is finite
  (SSSP on a cyclic weighted graph), so recursive branches guard
  ``_depth < bound``.  Under PreM, the aggregate of the twin truncated
  at the engine's own iteration count equals the engine's fixpoint; the
  differential harness re-runs at ``bound + 1`` to verify convergence
  independently rather than trusting the engine's count.
- an outer CTE ``v`` applying min/max/sum per group.

min/max twins recurse with ``UNION`` (set semantics; duplicates are
lattice-idempotent).  sum/count twins recurse with ``UNION ALL`` so each
derivation path contributes once — the engine's accumulator semantics —
which is only sound when every recursive contribution is
*homogeneous-linear* in the recursive aggregate column (``c.Cnt``,
``0.5 * e.Bonus``): linear maps distribute over the outer sum.  A
constant or affine contribution fires per *aggregated* tuple in the
engine but per *derivation row* in the twin, so those plans raise
:class:`repro.errors.InexpressibleQueryError`, as do multi-view cliques
(mutual recursion) and branches with several recursive references
(standard engines require linear recursion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compile.dialect import SQLITE, Dialect
from repro.core import ast_nodes as ast
from repro.core.expressions import Layout
from repro.core.logical import (
    AnalyzedScript,
    CliquePlan,
    DerivedViewPlan,
    RecursiveScanNode,
    RulePlan,
    ScanNode,
    ViewPlan,
)
from repro.errors import InexpressibleQueryError

#: Default derivation-depth guard for aggregate twin CTEs.  The
#: differential harness overrides this with the engine's observed
#: iteration count plus a margin; the default is generous enough for
#: every library dataset.
DEFAULT_DEPTH_BOUND = 64

_ARITHMETIC_OPS = {"+", "-", "*", "/"}

# Identifiers that must be quoted even though they look plain.  Kept
# deliberately broad — the union of common SQLite / DuckDB / BigQuery
# reserved words that plausibly appear as column or table names (the
# `shares` table's ``By``/``Of`` columns are the in-repo motivation).
_RESERVED = frozenset({
    "ALL", "AND", "ANY", "AS", "ASC", "BETWEEN", "BY", "CASE", "CAST",
    "CHECK", "COLLATE", "COLUMN", "CREATE", "CROSS", "CURRENT", "DEFAULT",
    "DELETE", "DESC", "DISTINCT", "DROP", "ELSE", "END", "EXCEPT", "EXISTS",
    "FALSE", "FOR", "FOREIGN", "FROM", "FULL", "GROUP", "HAVING", "IF",
    "IN", "INDEX", "INNER", "INSERT", "INTERSECT", "INTO", "IS", "JOIN",
    "KEY", "LEFT", "LIKE", "LIMIT", "NATURAL", "NOT", "NULL", "OF", "ON",
    "OR", "ORDER", "OUTER", "OVER", "PRIMARY", "RECURSIVE", "REFERENCES",
    "RIGHT", "ROW", "ROWS", "SELECT", "SET", "TABLE", "THEN", "TO", "TRUE",
    "UNION", "UNIQUE", "UPDATE", "USING", "VALUES", "WHEN", "WHERE", "WITH",
})


def _needs_quoting(name: str) -> bool:
    if not name or name.upper() in _RESERVED:
        return True
    if not (name[0].isalpha() or name[0] == "_"):
        return True
    return not all(ch.isalnum() or ch == "_" for ch in name)


@dataclass(frozen=True)
class CompiledQuery:
    """The emitter's output: one statement plus its provenance."""

    sql: str
    dialect: Dialect
    #: Output column names of the final SELECT, disambiguated exactly
    #: like the engine's local executor (later duplicates get ``_N``).
    columns: tuple[str, ...]
    #: Depth guard used by aggregate twin CTEs; ``None`` when the plan
    #: needed no twin (no aggregates-in-recursion).
    depth_bound: int | None
    #: ``(view, twin_cte, kind)`` per aggregated view; *kind* is
    #: ``"set"`` (min/max, UNION) or ``"bag"`` (sum/count, UNION ALL).
    twins: tuple[tuple[str, str, str], ...]
    #: Names of recursive views that became recursive CTEs.
    recursive_views: tuple[str, ...]
    #: Dialect caveats plus per-plan diagnostics, for docs and the CLI.
    notes: tuple[str, ...] = ()


def compile_script(analyzed: AnalyzedScript, *, dialect: Dialect = SQLITE,
                   depth_bound: int = DEFAULT_DEPTH_BOUND) -> CompiledQuery:
    """Lower *analyzed* to a single standard-SQL statement.

    Raises :class:`InexpressibleQueryError` when the plan has no
    ``WITH RECURSIVE`` form (mutual recursion, non-linear accumulators,
    several recursive references in one branch).
    """
    return _Emitter(analyzed, dialect, depth_bound).emit()


def compile_sql(ctx, sql: str, *, dialect: Dialect = SQLITE,
                config=None,
                depth_bound: int = DEFAULT_DEPTH_BOUND) -> CompiledQuery:
    """Front-to-back convenience: analyze *sql* on *ctx*, then lower it.

    ``ctx`` is a :class:`repro.RaSQLContext`; ``config`` overrides the
    context's execution config for the analyze step (only
    ``magic_filters`` affects the analyzed plan today — the stale-plan
    keying test pins that).
    """
    analyzed = ctx.analyze_query(sql, config)
    return compile_script(analyzed, dialect=dialect, depth_bound=depth_bound)


class _Emitter:
    def __init__(self, analyzed: AnalyzedScript, dialect: Dialect,
                 depth_bound: int):
        self.analyzed = analyzed
        self.dialect = dialect
        self.depth_bound = depth_bound
        self.ctes: list[str] = []
        self.twins: list[tuple[str, str, str]] = []
        self.recursive_views: list[str] = []
        self.notes: list[str] = list(dialect.caveats)
        self.used_depth = False

        #: lowercase names of CTE-defined relations (derived views and
        #: clique views); scans of anything else hit a base table.
        self.unit_names: set[str] = set()
        for unit in analyzed.units:
            if isinstance(unit, CliquePlan):
                self.unit_names.update(v.name.lower() for v in unit.views)
            else:
                self.unit_names.add(unit.name.lower())
        #: every identifier already taken, for twin-name allocation.
        self.taken: set[str] = set(self.unit_names)
        for unit in analyzed.units:
            if isinstance(unit, CliquePlan):
                for view in unit.views:
                    for rule in view.base_rules + view.recursive_rules:
                        if rule.join is not None:
                            for node in rule.join.inputs:
                                self.taken.add(node_relation(node).lower())
            else:
                for branch in unit.branches:
                    for table in branch.from_tables:
                        self.taken.add(table.name.lower())
        for table in analyzed.final.from_tables:
            self.taken.add(table.name.lower())

    # -- identifiers --------------------------------------------------

    def ident(self, name: str) -> str:
        """Quote only when needed: unquoted identifiers resolve
        case-insensitively on every target, which keeps raw AST
        references (whose case may differ from the catalog spelling)
        working on case-sensitive-when-quoted engines like DuckDB."""
        if _needs_quoting(name):
            return self.dialect.quote(name)
        return name

    def fresh(self, candidate: str) -> str:
        name, i = candidate, 1
        while name.lower() in self.taken:
            name = f"{candidate}_{i}"
            i += 1
        self.taken.add(name.lower())
        return name

    # -- expression rendering -----------------------------------------

    def render_expr(self, expr: ast.Expr, resolve) -> str:
        """Render *expr*; *resolve* maps a ColumnRef to its SQL."""
        if isinstance(expr, ast.Literal):
            return expr.to_sql()
        if isinstance(expr, ast.ColumnRef):
            return resolve(expr)
        if isinstance(expr, ast.BinaryOp):
            left = self.render_expr(expr.left, resolve)
            right = self.render_expr(expr.right, resolve)
            return f"({left} {expr.op} {right})"
        if isinstance(expr, ast.UnaryOp):
            inner = self.render_expr(expr.operand, resolve)
            if expr.op.upper() == "NOT":
                return f"(NOT {inner})"
            return f"({expr.op}{inner})"
        if isinstance(expr, ast.Case):
            parts = ["CASE"]
            for condition, value in expr.whens:
                parts.append(f"WHEN {self.render_expr(condition, resolve)} "
                             f"THEN {self.render_expr(value, resolve)}")
            if expr.default is not None:
                parts.append(f"ELSE {self.render_expr(expr.default, resolve)}")
            parts.append("END")
            return " ".join(parts)
        if isinstance(expr, ast.FunctionCall):
            inner = ", ".join(self.render_expr(a, resolve) for a in expr.args)
            if expr.distinct:
                inner = f"DISTINCT {inner}"
            return f"{expr.name.lower()}({inner})"
        if isinstance(expr, ast.Star):
            return "*"
        raise InexpressibleQueryError(
            f"cannot render expression {expr!r}", reason="unknown-expression")

    def raw_resolver(self):
        def resolve(ref: ast.ColumnRef) -> str:
            if ref.table:
                return f"{self.ident(ref.table)}.{self.ident(ref.name)}"
            return self.ident(ref.name)
        return resolve

    def layout_resolver(self, layout: Layout):
        """Resolve through the rule's layout so every reference is fully
        qualified with the catalog's column spelling (case-sensitive
        targets see the same identifier the CTE/table declares)."""
        by_binding = {b.lower(): (b, cols) for b, cols in layout.bindings}

        def resolve(ref: ast.ColumnRef) -> str:
            slot = layout.slot_of(ref)
            binding = layout.binding_of_slot(slot)
            spelled, columns = by_binding[binding.lower()]
            column = columns[slot - layout.offsets[binding.lower()]]
            return f"{self.ident(spelled)}.{self.ident(column)}"
        return resolve

    # -- raw SELECT blocks (derived views, final stratum) -------------

    def render_raw_select(self, query: ast.SelectQuery, *,
                          force_distinct: bool = False,
                          empty_aggregate_guard: bool = False) -> str:
        resolve = self.raw_resolver()
        parts = ["SELECT "]
        if query.distinct or force_distinct:
            parts.append("DISTINCT ")
        items = []
        for item in query.items:
            rendered = self.render_expr(item.expr, resolve)
            if item.alias:
                rendered += f" AS {self.ident(item.alias)}"
            items.append(rendered)
        parts.append(", ".join(items))
        if query.from_tables:
            froms = []
            for table in query.from_tables:
                sql = self.ident(table.name)
                if table.alias:
                    sql += f" AS {self.ident(table.alias)}"
                froms.append(sql)
            parts.append(" FROM " + ", ".join(froms))
        if query.where is not None:
            parts.append(" WHERE " + self.render_expr(query.where, resolve))
        if query.group_by:
            parts.append(" GROUP BY " + ", ".join(
                self.render_expr(e, resolve) for e in query.group_by))
        having = []
        if query.having is not None:
            having.append(self.render_expr(query.having, resolve))
        if (empty_aggregate_guard and not query.group_by
                and query.from_tables
                and any(ast.contains_aggregate(i.expr) for i in query.items)):
            # The engine's executor emits ZERO rows for a global
            # aggregate over empty input, where SQL emits one all-NULL
            # row; the guard restores engine semantics.
            having.append("count(*) > 0")
        if having:
            parts.append(" HAVING " + " AND ".join(having))
        if query.order_by:
            rendered = []
            for item in query.order_by:
                if isinstance(item.expr, ast.Literal):
                    key = str(item.expr.value)  # 1-based position
                else:
                    key = self.render_expr(item.expr, resolve)
                rendered.append(key + (" DESC" if item.descending else ""))
            parts.append(" ORDER BY " + ", ".join(rendered))
        if query.limit is not None:
            parts.append(f" LIMIT {query.limit}")
        return "".join(parts)

    # -- clique rules -------------------------------------------------

    def rule_selects(self, rule: RulePlan, view: ViewPlan,
                     twin: "_TwinSpec | None") -> list[str]:
        """Render one rule as SELECT blocks (several for VALUES rules)."""
        if rule.join is None:
            selects = []
            for row in rule.constant_rows:
                values = [ast.Literal(v).to_sql() for v in row]
                if twin is not None:
                    values = twin.normalize_branch(self, values,
                                                   rule.projections)
                    values.append("0")
                selects.append("SELECT " + ", ".join(values))
            return selects

        resolve = self.layout_resolver(rule.layout)
        recursive_nodes = [rule.join.inputs[i]
                           for i in rule.recursive_inputs()]
        if len(recursive_nodes) > 1:
            raise InexpressibleQueryError(
                f"view {view.name!r}: a rule references the recursive "
                f"relation {len(recursive_nodes)} times; standard "
                f"WITH RECURSIVE engines require linear recursion "
                f"(one recursive reference per branch)",
                view=view.name, reason="non-linear-recursion")

        froms = []
        where = []
        for node in rule.join.inputs:
            if isinstance(node, RecursiveScanNode):
                target = twin.twin_name if twin is not None else view.name
                froms.append(f"{self.ident(target)} AS "
                             f"{self.ident(node.binding)}")
                if twin is not None:
                    where.append(f"{self.ident(node.binding)}."
                                 f"{self.ident(twin.depth_column)}"
                                 f" < {twin.depth_bound}")
            else:
                froms.append(self.scan_sql(node))
                if node.filter is not None:
                    where.append(self.render_expr(node.filter, resolve))
        for left, right in rule.join.equi_conjuncts:
            where.append(f"{resolve(left)} = {resolve(right)}")
        for predicate in rule.join.residual:
            where.append(self.render_expr(predicate, resolve))

        values = [self.render_expr(e, resolve) for e in rule.projections]
        if twin is not None:
            twin.check_rule(self, rule, view, recursive_nodes)
            values = twin.normalize_branch(self, values, rule.projections)
            depths = [f"{self.ident(n.binding)}."
                      f"{self.ident(twin.depth_column)}"
                      for n in recursive_nodes]
            values.append(" + ".join(depths + ["1"]) if depths else "0")

        sql = "SELECT " + ", ".join(values) + " FROM " + ", ".join(froms)
        if where:
            sql += " WHERE " + " AND ".join(where)
        return [sql]

    def scan_sql(self, node: ScanNode) -> str:
        """A clique-rule scan.  The fixpoint operator deduplicates its
        base-table inputs (set semantics — the PR-3 fix), so base scans
        are wrapped in SELECT DISTINCT; CTE-defined views are already
        sets and referenced directly."""
        if node.relation.lower() in self.unit_names:
            return f"{self.ident(node.relation)} AS {self.ident(node.binding)}"
        columns = ", ".join(self.ident(c) for c in node.columns)
        return (f"(SELECT DISTINCT {columns} FROM "
                f"{self.ident(node.relation)}) AS {self.ident(node.binding)}")

    # -- units --------------------------------------------------------

    def emit_clique(self, clique: CliquePlan) -> None:
        if len(clique.views) > 1:
            names = ", ".join(clique.view_names)
            raise InexpressibleQueryError(
                f"clique [{names}]: mutual recursion cannot be expressed "
                f"as standard WITH RECURSIVE — each CTE may only "
                f"reference itself, not a sibling still being defined",
                view=clique.views[0].name, reason="mutual-recursion")
        view = clique.views[0]
        self.recursive_views.append(view.name)
        if view.has_aggregates:
            self.emit_twin_clique(view)
        else:
            selects = []
            for rule in view.base_rules + view.recursive_rules:
                selects.extend(self.rule_selects(rule, view, None))
            self.add_cte(view.name, view.columns, " UNION ".join(selects))

    def emit_twin_clique(self, view: ViewPlan) -> None:
        for position, aggregate in zip(view.aggregate_positions,
                                       [view.aggregates[i] for i in
                                        view.aggregate_positions]):
            if aggregate.name.lower() not in ("min", "max", "sum", "count"):
                raise InexpressibleQueryError(
                    f"view {view.name!r}: no twin form for aggregate "
                    f"{aggregate.name!r} in recursion",
                    view=view.name, reason="unsupported-aggregate")
        twin = _TwinSpec.for_view(self, view)
        self.twins.append((view.name, twin.twin_name, twin.kind))
        self.used_depth = True

        selects = []
        for rule in view.base_rules + view.recursive_rules:
            selects.extend(self.rule_selects(rule, view, twin))
        op = " UNION ALL " if twin.kind == "bag" else " UNION "
        self.add_cte(twin.twin_name,
                     tuple(view.columns) + (twin.depth_column,),
                     op.join(selects))

        items = []
        for i, column in enumerate(view.columns):
            aggregate = view.aggregates[i]
            if aggregate is None:
                items.append(self.ident(column))
            else:
                # count() contributions were normalized per branch, so
                # the outer fold is a plain sum for both sum and count.
                fold = "sum" if aggregate.name.lower() in ("sum", "count") \
                    else aggregate.name.lower()
                items.append(f"{fold}({self.ident(column)}) AS "
                             f"{self.ident(column)}")
        outer = ("SELECT " + ", ".join(items)
                 + f" FROM {self.ident(twin.twin_name)}")
        group_columns = [self.ident(view.columns[i])
                         for i in view.group_positions]
        if group_columns:
            outer += " GROUP BY " + ", ".join(group_columns)
        else:
            outer += " HAVING count(*) > 0"
        self.add_cte(view.name, view.columns, outer)

    def emit_derived(self, unit: DerivedViewPlan) -> None:
        # The executor deduplicates each branch and unions across
        # branches — DISTINCT per branch + UNION reproduces that.
        branches = [self.render_raw_select(b, force_distinct=True)
                    for b in unit.branches]
        self.add_cte(unit.name, unit.columns, " UNION ".join(branches))

    def add_cte(self, name: str, columns: tuple[str, ...],
                body: str) -> None:
        heading = ", ".join(self.ident(c) for c in columns)
        self.ctes.append(f"{self.ident(name)}({heading}) AS (\n"
                         f"  {body}\n)")

    # -- entry point --------------------------------------------------

    def emit(self) -> CompiledQuery:
        for unit in self.analyzed.units:
            if isinstance(unit, CliquePlan):
                self.emit_clique(unit)
            else:
                self.emit_derived(unit)
        final = self.render_raw_select(self.analyzed.final,
                                       empty_aggregate_guard=True)
        if self.ctes:
            keyword = ("WITH RECURSIVE" if self.recursive_views else "WITH")
            sql = keyword + "\n" + ",\n".join(self.ctes) + "\n" + final
        else:
            sql = final
        return CompiledQuery(
            sql=sql,
            dialect=self.dialect,
            columns=output_columns(self.analyzed.final),
            depth_bound=self.depth_bound if self.used_depth else None,
            twins=tuple(self.twins),
            recursive_views=tuple(self.recursive_views),
            notes=tuple(self.notes),
        )


@dataclass
class _TwinSpec:
    """How one aggregated view lowers to its un-aggregated twin."""

    twin_name: str
    depth_column: str
    depth_bound: int
    #: ``"set"`` (min/max only → UNION) or ``"bag"`` (any sum/count →
    #: UNION ALL; min/max columns riding along are duplicate-idempotent).
    kind: str
    #: head positions carrying a count() aggregate (need normalization).
    count_positions: tuple[int, ...]
    #: head positions carrying sum() or count() (need linearity checks).
    accumulator_positions: tuple[int, ...]

    @classmethod
    def for_view(cls, emitter: _Emitter, view: ViewPlan) -> "_TwinSpec":
        depth = "_depth"
        lowered = {c.lower() for c in view.columns}
        i = 1
        while depth.lower() in lowered:
            depth = f"_depth_{i}"
            i += 1
        names = [view.aggregates[i].name.lower()
                 for i in view.aggregate_positions]
        accumulators = tuple(p for p in view.aggregate_positions
                             if view.aggregates[p].name.lower()
                             in ("sum", "count"))
        return cls(
            twin_name=emitter.fresh(f"all_{view.name}"),
            depth_column=depth,
            depth_bound=emitter.depth_bound,
            kind="bag" if accumulators else "set",
            count_positions=tuple(p for p in view.aggregate_positions
                                  if view.aggregates[p].name.lower()
                                  == "count"),
            accumulator_positions=accumulators,
        )

    # -- count normalization ------------------------------------------

    def normalize_branch(self, emitter: _Emitter, values: list[str],
                         projections: tuple[ast.Expr, ...]) -> list[str]:
        """Apply the engine's count() contribution normalization
        (non-numeric counts as 1 — ``COUNT.normalize``) per branch, so
        the outer fold is a plain sum.  Skipped when the contribution is
        provably numeric, keeping the emitted SQL readable."""
        out = list(values)
        for position in self.count_positions:
            if not _provably_numeric(projections[position]):
                out[position] = emitter.dialect.normalize_count(out[position])
        return out

    # -- linearity ----------------------------------------------------

    def check_rule(self, emitter: _Emitter, rule: RulePlan, view: ViewPlan,
                   recursive_nodes: list[RecursiveScanNode]) -> None:
        """Reject recursive rules whose sum/count contribution is not
        homogeneous-linear in the recursive aggregate column, or that
        filter/group on partial aggregate values.

        The UNION ALL twin replays every derivation path; summing those
        partial values outside the recursion equals the engine's
        accumulator fixpoint exactly when each step's contribution is a
        linear map of the incoming aggregate (``sum over paths of c·x``
        = ``c · sum x``).  min/max twins need no such check — PreM
        itself is the admissibility condition there, and the
        differential harness runs ``core.prem.check_prem`` for them.
        """
        if not self.accumulator_positions or not recursive_nodes:
            return
        layout = rule.layout
        aggregate_slots = set()
        for node in recursive_nodes:
            offset = layout.offsets[node.binding.lower()]
            for position in view.aggregate_positions:
                aggregate_slots.add(offset + position)

        def references(expr: ast.Expr) -> bool:
            return any(isinstance(n, ast.ColumnRef)
                       and layout.slot_of(n) in aggregate_slots
                       for n in expr.walk())

        def linear(expr: ast.Expr) -> bool:
            if isinstance(expr, ast.ColumnRef):
                return layout.slot_of(expr) in aggregate_slots
            if isinstance(expr, ast.UnaryOp) and expr.op == "-":
                return linear(expr.operand)
            if isinstance(expr, ast.BinaryOp) and expr.op == "*":
                return ((linear(expr.left) and not references(expr.right))
                        or (linear(expr.right)
                            and not references(expr.left)))
            if isinstance(expr, ast.BinaryOp) and expr.op == "/":
                return linear(expr.left) and not references(expr.right)
            return False

        for position in self.accumulator_positions:
            contribution = rule.projections[position]
            if not linear(contribution):
                raise InexpressibleQueryError(
                    f"view {view.name!r}: recursive contribution "
                    f"{contribution.to_sql()!r} to "
                    f"{view.aggregates[position].name}() is not "
                    f"homogeneous-linear in the recursive aggregate "
                    f"column — the derivation-bag twin would mis-count "
                    f"(a linear map distributes over the outer sum; a "
                    f"constant or affine one fires per derivation path "
                    f"instead of per aggregated tuple)",
                    view=view.name, reason="non-linear-accumulator")
        for position in view.group_positions:
            if references(rule.projections[position]):
                raise InexpressibleQueryError(
                    f"view {view.name!r}: group-key projection "
                    f"{rule.projections[position].to_sql()!r} reads the "
                    f"recursive aggregate column; the twin would group "
                    f"on partial values instead of the aggregate",
                    view=view.name, reason="aggregate-in-group-key")
        predicates = list(rule.join.residual)
        predicates.extend(n.filter for n in rule.join.inputs
                          if isinstance(n, ScanNode) and n.filter is not None)
        for left, right in rule.join.equi_conjuncts:
            predicates.extend((left, right))
        for predicate in predicates:
            if references(predicate):
                raise InexpressibleQueryError(
                    f"view {view.name!r}: predicate "
                    f"{predicate.to_sql()!r} reads the recursive "
                    f"aggregate column; the twin would filter partial "
                    f"values instead of the aggregate",
                    view=view.name, reason="aggregate-in-predicate")


def _provably_numeric(expr: ast.Expr) -> bool:
    """True when *expr* always evaluates to a number (so count()
    normalization can be skipped).  Conservative: column references are
    never provable from the plan alone."""
    if isinstance(expr, ast.Literal):
        return (isinstance(expr.value, (int, float))
                and not isinstance(expr.value, bool))
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        return _provably_numeric(expr.operand)
    if isinstance(expr, ast.BinaryOp) and expr.op in _ARITHMETIC_OPS:
        # Arithmetic either yields a number or errors on both engines.
        return True
    return False


def node_relation(node) -> str:
    """The relation a join input reads (scan target or recursive view)."""
    return node.view if isinstance(node, RecursiveScanNode) else node.relation


def output_columns(final: ast.SelectQuery) -> tuple[str, ...]:
    """Final-SELECT column names, disambiguated like the executor
    (case-insensitive; later duplicates get ``_N`` suffixes)."""
    names: list[str] = []
    seen: dict[str, int] = {}
    for i, item in enumerate(final.items):
        name = item.output_name(i)
        key = name.lower()
        if key in seen:
            seen[key] += 1
            name = f"{name}_{seen[key]}"
        else:
            seen[key] = 0
        names.append(name)
    return tuple(names)
