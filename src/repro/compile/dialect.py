"""Target-dialect descriptors for the cross-engine emitter.

A :class:`Dialect` captures the few points where standard
``WITH RECURSIVE`` SQL differs between the engines we target:
identifier quoting, and how a ``count()``-in-recursion contribution is
normalized (the engine counts non-numeric contributions as one derived
fact — see ``repro.engine.aggregates.COUNT.normalize``).

Everything else the emitter produces — recursive CTEs with compound
UNION bodies, CTE column lists, ``HAVING`` without ``GROUP BY`` — is
SQL:99 shared by all three targets.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Dialect:
    """One SQL target: how to quote and how to normalize count inputs.

    ``quote_char`` wraps identifiers (doubled when embedded);
    ``count_normalize_template`` receives the rendered contribution
    expression as ``{expr}`` and must yield the engine's normalization:
    numeric values pass through, anything else counts as ``1``.
    """

    name: str
    quote_char: str = '"'
    count_normalize_template: str = (
        "CASE WHEN TYPEOF({expr}) IN ('integer', 'real') "
        "THEN {expr} ELSE 1 END")
    #: Documented deviations from engine semantics (surfaced in docs and
    #: the CLI's ``compile`` output as a leading comment).
    caveats: tuple[str, ...] = ()

    def quote(self, identifier: str) -> str:
        q = self.quote_char
        return f"{q}{identifier.replace(q, q + q)}{q}"

    def normalize_count(self, expr_sql: str) -> str:
        return self.count_normalize_template.format(expr=expr_sql)


SQLITE = Dialect(name="sqlite")

# DuckDB has no per-value TYPEOF storage class (columns are typed), so
# count normalization probes castability instead; numeric-looking
# strings therefore normalize to their value rather than 1.  No library
# query feeds strings to count() on this path (Party Attendance, the
# one that does, is inexpressible for the independent reason of mutual
# recursion).
DUCKDB = Dialect(
    name="duckdb",
    count_normalize_template=(
        "CASE WHEN TRY_CAST({expr} AS DOUBLE) IS NULL "
        "THEN 1 ELSE {expr} END"),
    caveats=(
        "count() normalization uses TRY_CAST: numeric-looking strings "
        "count as their value, not 1",
    ),
)

# BigQuery Standard SQL: backtick quoting, SAFE_CAST probing.  This
# dialect is snapshot-tested only — we never execute against a real
# BigQuery project — so string-literal escaping keeps the '' doubling
# of the shared renderer (a documented caveat; BigQuery itself prefers
# backslash escapes).
BIGQUERY = Dialect(
    name="bigquery",
    quote_char="`",
    count_normalize_template=(
        "CASE WHEN SAFE_CAST({expr} AS FLOAT64) IS NULL "
        "THEN 1 ELSE {expr} END"),
    caveats=(
        "snapshot-only dialect: emitted text is never executed by the "
        "test suite",
        "string literals keep '' doubling; BigQuery prefers backslash "
        "escapes",
    ),
)

BY_NAME = {d.name: d for d in (SQLITE, DUCKDB, BIGQUERY)}


def get_dialect(name: str) -> Dialect:
    """Look up a dialect by name with a helpful error."""
    try:
        return BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(f"unknown dialect {name!r}; "
                       f"available: {sorted(BY_NAME)}") from None
