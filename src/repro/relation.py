"""Schema-carrying relations.

A :class:`Relation` is the unit of data exchanged at the public API boundary:
a named schema over a list of tuples.  Inside the engine, data travels as bare
tuples for speed; the schema is only consulted during analysis and when
results are rendered back to the user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True)
class Schema:
    """An ordered list of column names.

    Column lookup is case-insensitive, matching SQL identifier rules; the
    original spelling is preserved for display.
    """

    columns: tuple[str, ...]

    def __post_init__(self):
        lowered = [c.lower() for c in self.columns]
        if len(set(lowered)) != len(lowered):
            raise ValueError(f"duplicate column names in schema: {self.columns}")

    def index_of(self, name: str) -> int:
        """Return the position of *name*, case-insensitively.

        Raises ``KeyError`` when the column does not exist.
        """
        target = name.lower()
        for i, column in enumerate(self.columns):
            if column.lower() == target:
                return i
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        target = name.lower()
        return any(column.lower() == target for column in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[str]:
        return iter(self.columns)


class Relation:
    """A named, schema'd bag of tuples.

    ``rows`` is stored as a list of plain tuples.  The class intentionally
    offers only light conveniences (column projection, sorting for display,
    equality as multisets) — heavy lifting belongs to the engine.
    """

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Iterable[Sequence] | None = None):
        self.name = name
        self.schema = Schema(tuple(columns))
        self.rows: list[tuple] = (list(map(tuple, rows))
                                  if rows is not None else [])
        width = len(self.schema)
        for row in self.rows:
            if len(row) != width:
                raise ValueError(
                    f"row {row!r} does not match schema {self.schema.columns} "
                    f"of relation {name!r}")

    @classmethod
    def from_tuples(cls, name: str, columns: Sequence[str],
                    rows: list[tuple]) -> "Relation":
        """Trusted constructor for engine-internal results.

        Skips the per-row coercion and arity validation of ``__init__``
        for rows the engine just produced (already plain tuples of the
        right width); the list is taken by reference, not copied.
        """
        relation = cls.__new__(cls)
        relation.name = name
        relation.schema = Schema(tuple(columns))
        relation.rows = rows
        return relation

    @property
    def columns(self) -> tuple[str, ...]:
        return self.schema.columns

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def column(self, name: str) -> list:
        """Return all values of one column, in row order."""
        idx = self.schema.index_of(name)
        return [row[idx] for row in self.rows]

    def distinct(self) -> "Relation":
        """Return a new relation with duplicate rows removed (order lost)."""
        return Relation(self.name, self.columns, set(self.rows))

    def sorted(self) -> "Relation":
        """Return a new relation with rows in canonical sorted order."""
        return Relation(self.name, self.columns, sorted(self.rows, key=repr))

    def to_dict(self) -> dict:
        """For two-column relations, return a ``{first: second}`` mapping.

        Convenient in tests for keyed query results (e.g. SSSP distances).
        """
        if len(self.schema) != 2:
            raise ValueError("to_dict() requires exactly two columns")
        return {row[0]: row[1] for row in self.rows}

    def same_rows(self, other: "Relation | Iterable[Sequence]") -> bool:
        """Multiset equality of rows, ignoring order and schema names."""
        other_rows = other.rows if isinstance(other, Relation) else [tuple(r) for r in other]
        if len(self.rows) != len(other_rows):
            return False
        from collections import Counter
        return Counter(self.rows) == Counter(other_rows)

    def __repr__(self) -> str:
        return (f"Relation({self.name!r}, columns={list(self.columns)}, "
                f"rows={len(self.rows)})")

    def show(self, limit: int = 20) -> str:
        """Render an ASCII table of up to *limit* rows (for examples/demos)."""
        header = " | ".join(self.columns)
        separator = "-" * len(header)
        body = [" | ".join(str(v) for v in row) for row in self.rows[:limit]]
        suffix = [] if len(self.rows) <= limit else [f"... ({len(self.rows)} rows total)"]
        return "\n".join([header, separator, *body, *suffix])
