"""Command-line front end: run RaSQL queries against files.

    python -m repro --table edge=graph.tsv query.sql
    python -m repro --table edge=graph.tsv -q "SELECT count(*) FROM edge"
    python -m repro --table edge=graph.tsv --explain query.sql
    echo "SELECT ..." | python -m repro --table edge=graph.tsv -
    python -m repro workload --clients 50 --requests 300 --quick

Tables load from CSV (header row) or whitespace edge lists; results print
as an aligned table, with the fixpoint statistics on stderr.  The
``workload`` subcommand (alias ``serve``) drives the multi-tenant query
service (``repro.serving``) with a seeded mix of concurrent sessions and
prints the latency/cache scorecard.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro import ExecutionConfig, RaSQLContext
from repro.io import load_table, write_csv


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a RaSQL (recursive-aggregate SQL) query.")
    parser.add_argument("query", nargs="?",
                        help="path to a .sql file, '-' for stdin, or omit "
                             "when using -q")
    parser.add_argument("-q", "--query-text", help="inline query text")
    parser.add_argument("--table", action="append", default=[],
                        metavar="NAME=PATH",
                        help="register a base table from a CSV or edge-list "
                             "file (repeatable)")
    parser.add_argument("--workers", type=int, default=4,
                        help="simulated worker count (default 4)")
    parser.add_argument("--backend", default="simulated",
                        choices=["simulated", "process"],
                        help="execution backend: 'simulated' runs every "
                             "task in-process on the deterministic oracle; "
                             "'process' ships eligible fixpoint stages to "
                             "a supervised pool of real worker processes "
                             "(heartbeats, hung-task reaping, crash "
                             "recovery) and falls back to simulated for "
                             "everything else")
    parser.add_argument("--liveness-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="process backend: reap a worker that has been "
                             "silent for this many wall-clock seconds "
                             "(default 5)")
    parser.add_argument("--task-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="process backend: reap a worker whose current "
                             "task has run for this many wall-clock "
                             "seconds (default 30)")
    parser.add_argument("--explain", action="store_true",
                        help="print the plan instead of executing")
    parser.add_argument("--explain-analyze", action="store_true",
                        help="execute, then print the per-iteration trace "
                             "timeline (delta sizes, stage time, bytes)")
    parser.add_argument("--trace", metavar="PATH",
                        help="write the query's span-tree trace as JSON")
    parser.add_argument("--check-prem", action="store_true",
                        help="run the PreM validator (Appendix G) on the "
                             "query instead of executing it")
    parser.add_argument("--chaos", type=int, metavar="SEED",
                        help="run the query twice — clean, then under a "
                             "seeded random fault schedule (task deaths + "
                             "worker loss) — and verify the results match "
                             "bit-exactly")
    parser.add_argument("--faults", action="append", default=[],
                        metavar="SPEC",
                        help="arm a fault injector for the run, e.g. "
                             "'task:fixpoint:task_index=1:point=after' or "
                             "'worker-loss:fixpoint:worker=2:at_task=1' "
                             "(repeatable)")
    parser.add_argument("--no-codegen", action="store_true")
    parser.add_argument("--no-stage-combination", action="store_true")
    parser.add_argument("--no-kernels", action="store_true",
                        help="run the fixpoint through the naive reference "
                             "loops instead of the specialized kernels "
                             "(wall-clock only; results are bit-exact "
                             "either way)")
    parser.add_argument("--no-adaptive-join", action="store_true",
                        help="disable per-iteration adaptive join-strategy "
                             "selection for co-partitioned joins")
    parser.add_argument("--no-columnar", action="store_true",
                        help="keep the row-tuple representation end to end: "
                             "disable columnar batch kernels and the compact "
                             "batch wire format of the process backend "
                             "(results are bit-exact either way)")
    parser.add_argument("--kernel-min-rows", type=int, default=None,
                        metavar="N",
                        help="size gate for the kernel layer: cliques whose "
                             "base inputs total fewer than N rows skip "
                             "kernel dispatch (0 disables the gate; default "
                             "256)")
    parser.add_argument("--profile", metavar="PATH",
                        help="profile the query's execution with cProfile "
                             "and write pstats output here (inspect with "
                             "python -m pstats PATH)")
    parser.add_argument("--checkpoint", metavar="DIR",
                        help="persist the fixpoint working set under DIR "
                             "every --checkpoint-interval iterations; a "
                             "killed run continues bit-exactly with "
                             "--resume QUERY_ID (the id prints after a "
                             "checkpointed run)")
    parser.add_argument("--checkpoint-interval", type=int, default=None,
                        metavar="N",
                        help="iterations between durable checkpoints "
                             "(default 4; only meaningful with "
                             "--checkpoint)")
    parser.add_argument("--resume", metavar="QUERY_ID",
                        help="resume a crashed or timed-out checkpointed "
                             "query from its last durable iteration "
                             "(requires --checkpoint DIR and the same "
                             "--table data; the query text is read from "
                             "the checkpoint manifest)")
    parser.add_argument("--evaluation", default="dsn",
                        choices=["dsn", "naive", "stratified"])
    parser.add_argument("--timeout", type=float, metavar="SECONDS",
                        help="abort the query once it exceeds this many "
                             "*simulated* seconds (checked at stage "
                             "boundaries); exit code 3")
    parser.add_argument("--memory-budget", type=int, metavar="BYTES",
                        help="per-worker memory budget; colder cached "
                             "partitions spill to a simulated disk tier "
                             "under pressure, and a working set that "
                             "cannot fit even after spilling aborts with "
                             "exit code 4")
    parser.add_argument("--output", help="write the result as CSV here")
    parser.add_argument("--limit", type=int, default=50,
                        help="max rows to print (default 50)")
    return parser


def read_query(args) -> str:
    if args.query_text:
        return args.query_text
    if args.query == "-":
        return sys.stdin.read()
    if args.query:
        return pathlib.Path(args.query).read_text()
    raise SystemExit("error: provide a query file, '-', or -q TEXT")


def make_context(args, config: ExecutionConfig) -> RaSQLContext:
    """A fresh session with the CLI's tables registered (chaos runs need
    two of these, so the clean and faulted clusters share no state)."""
    cluster_kwargs = {}
    if args.memory_budget is not None:
        from repro.engine.memory import MemoryConfig

        cluster_kwargs["memory_config"] = MemoryConfig(
            worker_budget_bytes=args.memory_budget)
    if (getattr(args, "liveness_timeout", None) is not None
            or getattr(args, "task_deadline", None) is not None):
        from repro.engine.backend import ProcessConfig

        defaults = ProcessConfig()
        cluster_kwargs["process_config"] = ProcessConfig(
            liveness_timeout=(args.liveness_timeout
                              if args.liveness_timeout is not None
                              else defaults.liveness_timeout),
            task_deadline_s=(args.task_deadline
                             if args.task_deadline is not None
                             else defaults.task_deadline_s))
    ctx = RaSQLContext(num_workers=args.workers, config=config,
                       **cluster_kwargs)
    for spec in args.table:
        name, _, path = spec.partition("=")
        if not path:
            raise SystemExit(f"error: --table expects NAME=PATH, got {spec!r}")
        relation = load_table(path, name)
        ctx.catalog.register_relation(
            type(relation)(name, relation.columns, relation.rows))
    return ctx


def run_chaos(args, query: str, config: ExecutionConfig) -> int:
    from repro.chaos import make_schedule, run_with_chaos
    from repro.engine.tracing import format_explain_analyze

    schedule = make_schedule(args.chaos, num_workers=args.workers)
    report = run_with_chaos(query, lambda: make_context(args, config),
                            schedule)
    print(report.summary())
    if args.explain_analyze:
        print()
        print(format_explain_analyze(report.trace))
    if not report.matches:
        print("error: chaos run diverged from the clean run",
              file=sys.stderr)
        return 1
    return 0


def _iter_spans(span: dict, kind: str):
    if span.get("kind") == kind:
        yield span
    for child in span.get("children", ()):
        yield from _iter_spans(child, kind)


def run_workload_command(argv: list[str]) -> int:
    """``python -m repro workload``: the multi-tenant serving demo."""
    parser = argparse.ArgumentParser(
        prog="python -m repro workload",
        description="Drive the query service with a seeded mix of "
                    "concurrent sessions (view reads, repeated SQL, "
                    "inserts) and print the latency/cache scorecard.")
    parser.add_argument("--clients", type=int, default=50,
                        help="named client sessions (default 50)")
    parser.add_argument("--requests", type=int, default=300,
                        help="total requests across all clients "
                             "(default 300)")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload + scheduler seed (default 7)")
    parser.add_argument("--scheduler", choices=["fifo", "seeded"],
                        default="seeded",
                        help="interleaving policy of the cooperative "
                             "driver (default seeded)")
    parser.add_argument("--workers", type=int, default=4,
                        help="simulated worker count (default 4)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller base graph (CI smoke)")
    parser.add_argument("--json", action="store_true",
                        help="print the full summary as JSON")
    args = parser.parse_args(argv)

    from repro.serving import run_workload

    summary = run_workload(clients=args.clients, requests=args.requests,
                           seed=args.seed, quick=args.quick,
                           num_workers=args.workers,
                           scheduler=args.scheduler)
    if args.json:
        import json

        print(json.dumps(summary, indent=2))
        return 0
    overall = summary["latency"]["overall"]
    cache = summary["cache"]
    print(f"workload: {summary['requests']} requests from "
          f"{summary['clients']} sessions "
          f"({summary['completed']} ok, {summary['failed']} failed, "
          f"{summary['rejected']} rejected, {summary['queued']} queued)")
    print(f"latency (simulated): p50={overall['p50_s']:.4f}s "
          f"p99={overall['p99_s']:.4f}s mean={overall['mean_s']:.4f}s")
    for kind in ("sql", "view_read", "insert"):
        if kind in summary["latency"]:
            stats = summary["latency"][kind]
            print(f"  {kind:10s} n={stats['count']:<5d} "
                  f"p50={stats['p50_s']:.4f}s p99={stats['p99_s']:.4f}s")
    print(f"caches: plan hit rate {cache['plan']['hit_rate']:.1%}, "
          f"result hit rate {cache['result']['hit_rate']:.1%}, "
          f"view snapshot hit rate {cache['view_snapshot_hit_rate']:.1%}")
    print(f"simulated cluster time: {summary['sim_time_s']:.4f}s")
    return 0


def _compile_parser(mode: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"python -m repro {mode}",
        description=("Lower a RaSQL query to standard WITH RECURSIVE SQL"
                     if mode == "compile" else
                     "Run a RaSQL query on the engine AND on an external "
                     "SQL backend, then diff the results row-for-row."))
    parser.add_argument("query", nargs="?",
                        help="path to a .sql file, '-' for stdin, or omit "
                             "when using -q / --library")
    parser.add_argument("-q", "--query-text", help="inline query text")
    parser.add_argument("--library", metavar="NAME",
                        help="use a library query by name (see "
                             "repro.queries.library); its base tables are "
                             "registered empty unless --table supplies data")
    parser.add_argument("--source", type=int, default=0,
                        help="value for the {source} parameter of "
                             "sssp/reach/count_paths (default 0)")
    parser.add_argument("--table", action="append", default=[],
                        metavar="NAME=PATH",
                        help="register a base table from a CSV or edge-list "
                             "file (repeatable)")
    parser.add_argument("--workers", type=int, default=4,
                        help="simulated worker count (default 4)")
    parser.add_argument("--no-magic-filters", action="store_true",
                        help="disable magic-filter pushdown before lowering "
                             "(the one config knob that changes the "
                             "analyzed plan)")
    if mode == "compile":
        parser.add_argument("--dialect", default="sqlite",
                            choices=["sqlite", "duckdb", "bigquery"],
                            help="target dialect (bigquery is emit-only)")
        parser.add_argument("--depth-bound", type=int, default=None,
                            metavar="N",
                            help="derivation-depth guard for aggregate twin "
                                 "CTEs (default 64; `diff` instead derives "
                                 "it from the engine's iteration count)")
    else:
        parser.add_argument("--backend", default="sqlite",
                            choices=["sqlite", "duckdb"],
                            help="executing oracle backend (default sqlite; "
                                 "duckdb requires the optional package)")
        parser.add_argument("--no-kernels", action="store_true",
                            help="run the engine side through the reference "
                                 "loops instead of the specialized kernels")
        parser.add_argument("--show-sql", action="store_true",
                            help="print the emitted SQL even when the "
                                 "results match")
    return parser


def run_compile_command(argv: list[str], mode: str) -> int:
    """``python -m repro compile`` / ``python -m repro diff``.

    Exit codes for ``diff``: 0 results match, 1 divergence (or twin
    depth bound failed to converge), 2 the query has no standard
    WITH RECURSIVE form (mutual recursion, non-linear accumulators).
    """
    args = _compile_parser(mode).parse_args(argv)

    from repro.compile import compile_sql, diff_query, get_dialect
    from repro.compile.backends import make_backend
    from repro.errors import InexpressibleQueryError, RaSQLError

    if args.library:
        from repro.queries.library import get_query

        try:
            spec = get_query(args.library)
        except KeyError as exc:
            raise SystemExit(f"error: {exc}")
        query = (spec.formatted(source=args.source)
                 if "{source}" in spec.sql else spec.sql)
    else:
        query = read_query(args)

    config = ExecutionConfig(
        magic_filters=not args.no_magic_filters,
        kernels=not getattr(args, "no_kernels", False))
    ctx = RaSQLContext(num_workers=args.workers, config=config)
    provided = set()
    for table_spec in args.table:
        name, _, path = table_spec.partition("=")
        if not path:
            raise SystemExit(f"error: --table expects NAME=PATH, "
                             f"got {table_spec!r}")
        relation = load_table(path, name)
        ctx.register_table(name, relation.columns, relation.rows)
        provided.add(name.lower())
    if args.library:
        from repro.queries.library import get_query

        for name, columns in get_query(args.library).tables.items():
            if name.lower() not in provided:
                ctx.register_table(name, columns, [])

    try:
        if mode == "compile":
            compile_kwargs = {"dialect": get_dialect(args.dialect),
                              "config": config}
            if args.depth_bound is not None:
                compile_kwargs["depth_bound"] = args.depth_bound
            compiled = compile_sql(ctx, query, **compile_kwargs)
            print(f"-- dialect: {compiled.dialect.name}")
            print(f"-- columns: {', '.join(compiled.columns)}")
            for view, twin, kind in compiled.twins:
                print(f"-- twin: {view} -> {twin} ({kind}, depth bound "
                      f"{compiled.depth_bound})")
            for note in compiled.notes:
                print(f"-- note: {note}")
            print(compiled.sql)
            return 0

        try:
            backend = make_backend(args.backend)
        except RuntimeError as exc:
            raise SystemExit(f"error: {exc}")
        with backend:
            report = diff_query(ctx, query, backend=backend,
                                dialect=get_dialect(args.backend),
                                config=config,
                                label=args.library or "query")
        print(report.summary())
        if args.show_sql and report.equal:
            print(report.sql)
        return 0 if report.equal and report.converged is not False else 1
    except InexpressibleQueryError as exc:
        print(f"inexpressible ({exc.reason}): {exc}", file=sys.stderr)
        return 2
    except RaSQLError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in ("workload", "serve"):
        return run_workload_command(argv[1:])
    if argv and argv[0] in ("compile", "diff"):
        return run_compile_command(argv[1:], argv[0])
    args = build_parser().parse_args(argv)
    # --resume reads the statement from the checkpoint manifest.
    query = "" if args.resume else read_query(args)

    try:
        config_kwargs = {}
        if args.kernel_min_rows is not None:
            config_kwargs["kernel_min_rows"] = args.kernel_min_rows
        if args.checkpoint is not None:
            from repro.core.config import DEFAULT_CHECKPOINT_INTERVAL

            config_kwargs["checkpoint_dir"] = args.checkpoint
            config_kwargs["checkpoint_interval"] = (
                args.checkpoint_interval
                if args.checkpoint_interval is not None
                else DEFAULT_CHECKPOINT_INTERVAL)
        elif args.resume is not None:
            raise SystemExit(
                "error: --resume needs --checkpoint DIR (the directory "
                "the crashed run checkpointed into)")
        config = ExecutionConfig(
            codegen=not args.no_codegen,
            stage_combination=not args.no_stage_combination,
            kernels=not args.no_kernels,
            adaptive_joins=not args.no_adaptive_join,
            columnar_batches=not args.no_columnar,
            evaluation=args.evaluation,
            deadline_seconds=args.timeout,
            backend=args.backend,
            **config_kwargs,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")

    if args.chaos is not None:
        return run_chaos(args, query, config)

    ctx = make_context(args, config)
    if args.faults:
        from repro.chaos import parse_fault_spec

        try:
            ctx.inject_faults(*(parse_fault_spec(s) for s in args.faults))
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")

    if args.explain:
        print(ctx.explain(query))
        return 0

    if args.check_prem:
        from repro.core.prem import check_prem

        tables = {name: (list(ctx.catalog.get(name).columns),
                         ctx.catalog.get(name).rows)
                  for name in ctx.catalog.names()}
        prem_report = check_prem(query, tables)
        print(prem_report)
        print(prem_report.format_trace())
        return 0 if prem_report.holds else 1

    from repro.errors import (
        AdmissionRejectedError,
        CheckpointError,
        MemoryBudgetExceededError,
        QueryDeadlineExceededError,
    )

    try:
        if args.resume:
            # Forward the CLI-built config: flags on the resume command
            # line win over the manifest's replayed ones, so a run that
            # died on its deadline resumes with the raised --timeout.
            result = ctx.resume(args.resume, checkpoint_dir=args.checkpoint,
                                config=config)
        else:
            result = ctx.sql(query, profile_path=args.profile)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 6
    except QueryDeadlineExceededError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.partial_trace is not None:
            stages = sum(1 for _ in _iter_spans(exc.partial_trace, "stage"))
            iters = sum(1 for _ in _iter_spans(exc.partial_trace,
                                               "iteration"))
            print(f"-- partial trace: {iters} fixpoint iterations, "
                  f"{stages} completed stages before the deadline "
                  f"(re-run with --trace PATH to save it)",
                  file=sys.stderr)
        if args.checkpoint is not None and ctx.last_run.query_id:
            print(f"-- continue from the last durable iteration with "
                  f"--checkpoint {args.checkpoint} --resume "
                  f"{ctx.last_run.query_id} (raise --timeout for a "
                  f"fresh window)", file=sys.stderr)
        return 3
    except MemoryBudgetExceededError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 4
    except AdmissionRejectedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 5
    print(result.sorted().show(limit=args.limit))
    stats = ctx.last_run
    print(f"-- {len(result)} rows; {stats.iterations} fixpoint iterations; "
          f"{stats.sim_time:.4f} simulated cluster seconds",
          file=sys.stderr)
    if args.checkpoint is not None and stats.query_id:
        ckpt = stats.checkpoint_summary()
        resumed = (f"; resumed from iteration {stats.resumed_from}"
                   if stats.resumed_from else "")
        print(f"-- checkpoint: query_id={stats.query_id} "
              f"writes={ckpt['checkpoint_writes']:.0f} "
              f"({ckpt['checkpoint_bytes']:.0f} bytes){resumed}",
              file=sys.stderr)
    if args.memory_budget is not None:
        mem = stats.memory_summary()
        hwm = max((v for k, v in mem.items()
                   if k.startswith("memory_hwm_bytes_w")), default=0)
        print(f"-- memory: peak worker high-water {hwm:.0f} bytes; "
              f"spills={mem['spill_events']:.0f} "
              f"({mem['spill_bytes']:.0f} bytes)", file=sys.stderr)
    if args.faults:
        fault_stats = stats.fault_summary()
        print(f"-- recovery: attempts={fault_stats['task_attempts']:.0f} "
              f"failures={fault_stats['task_failures']:.0f} "
              f"workers_lost={fault_stats['workers_lost']:.0f} "
              f"recovery_time={fault_stats['recovery_seconds']:.4f}s",
              file=sys.stderr)
    if args.explain_analyze:
        print()
        print(stats.explain_analyze())
    if args.trace:
        import json

        pathlib.Path(args.trace).write_text(
            json.dumps(stats.trace, indent=2) + "\n")
        print(f"-- wrote trace {args.trace}", file=sys.stderr)
    if args.profile:
        print(f"-- wrote profile {stats.profile_path}", file=sys.stderr)
    if args.output:
        write_csv(result, args.output)
        print(f"-- wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
