"""repro — a standalone reproduction of RaSQL (SIGMOD 2019).

RaSQL extends SQL's recursive common table expressions with min/max/sum/
count aggregates *inside* the recursion, justified by the PreM property,
and evaluates them with one distributed semi-naive fixpoint operator.

Public API:

- :class:`RaSQLContext` — register tables, run RaSQL queries.
- :class:`ExecutionConfig` — the optimization knobs of Sections 6–7.
- :class:`Relation` — schema'd rows at the API boundary.
- :mod:`repro.queries` — the paper's query library (SSSP, CC, BOM, ...).
- :mod:`repro.datagen` — RMAT / synthetic / real-world-proxy generators.
- :mod:`repro.baselines` — Giraph/GraphX/BigDatalog/Myria/serial analogs.
"""

from repro.core.config import (
    DEFAULT_CONFIG,
    ExecutionConfig,
    FaultToleranceConfig,
)
from repro.core.context import RaSQLContext
from repro.core.governor import QueryGovernor
from repro.core.streaming import IncrementalView
from repro.engine.memory import MemoryConfig
from repro.relation import Relation

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "ExecutionConfig",
    "FaultToleranceConfig",
    "IncrementalView",
    "MemoryConfig",
    "QueryGovernor",
    "RaSQLContext",
    "Relation",
    "__version__",
]
