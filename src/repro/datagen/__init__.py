"""Workload generators: RMAT, Appendix E synthetics, Table 1 proxies."""

from repro.datagen.rmat import rmat_edges, rmat_graph
from repro.datagen.realworld import REAL_GRAPHS, proxy_graph, proxy_table
from repro.datagen.synthetic import (
    Tree,
    gn_graph,
    grid_graph,
    random_graph,
    random_tree,
    tree_tables,
)

__all__ = [
    "REAL_GRAPHS",
    "Tree",
    "gn_graph",
    "grid_graph",
    "proxy_graph",
    "proxy_table",
    "random_graph",
    "random_tree",
    "rmat_edges",
    "rmat_graph",
    "tree_tables",
]
