"""Synthetic graphs of Appendix E and the Figure 10 tree datasets.

- ``grid_graph(k)`` — the Grid150/Grid250 family: a (k+1)×(k+1) grid with
  edges pointing right and down.
- ``gn_graph(n, e)`` — the G-n-e family: Erdős–Rényi digraphs where each
  ordered pair is an edge with probability 10^-e.
- ``random_tree(...)`` — the Figure 10 hierarchy generator: each node has
  5–10 children and each child is a leaf with probability 20–60%; the
  paper's datasets are trees of height 10–13 with 40M–300M nodes (scaled
  here, see DESIGN.md).
- ``tree_tables(...)`` — derives the Delivery/Management/MLM base tables
  from one generated tree.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


def grid_graph(k: int) -> list[tuple[int, int]]:
    """A (k+1)x(k+1) directed grid: Grid150 is ``grid_graph(150)``."""
    size = k + 1

    def node(row: int, column: int) -> int:
        return row * size + column

    edges = []
    for row in range(size):
        for column in range(size):
            if column + 1 < size:
                edges.append((node(row, column), node(row, column + 1)))
            if row + 1 < size:
                edges.append((node(row, column), node(row + 1, column)))
    return edges


def gn_graph(n: int, e: int, seed: int = 42) -> list[tuple[int, int]]:
    """G-n-e: n vertices, each ordered pair an edge w.p. ``10**-e``.

    Sampled by drawing the expected number of edges rather than testing
    all n² pairs, which matches the model for sparse settings.
    """
    rng = random.Random(seed)
    probability = 10.0 ** -e
    expected = int(n * n * probability)
    edges = set()
    while len(edges) < expected:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((a, b))
    return sorted(edges)


@dataclass
class Tree:
    """A generated hierarchy: parent→child edges plus the leaf set."""

    edges: list[tuple[int, int]]  # (parent, child)
    leaves: list[int]
    num_nodes: int
    height: int


def random_tree(height: int, seed: int = 42, min_children: int = 5,
                max_children: int = 10, leaf_probability: float = 0.4,
                max_nodes: int | None = None) -> Tree:
    """The Figure 10 generator: 5–10 children, 20–60% leaf chance.

    ``max_nodes`` caps growth so sweeps can target node counts directly.
    """
    rng = random.Random(seed)
    edges: list[tuple[int, int]] = []
    leaves: list[int] = []
    next_id = 1
    frontier = [(0, 0)]  # (node, depth)
    while frontier:
        node, depth = frontier.pop()
        if depth >= height:
            leaves.append(node)
            continue
        n_children = rng.randint(min_children, max_children)
        became_leaf = True
        for _ in range(n_children):
            if max_nodes is not None and next_id >= max_nodes:
                break
            child = next_id
            next_id += 1
            edges.append((node, child))
            became_leaf = False
            if depth + 1 >= height or rng.random() < leaf_probability:
                leaves.append(child)
            else:
                frontier.append((child, depth + 1))
        if became_leaf:
            leaves.append(node)
    return Tree(edges, leaves, next_id, height)


def tree_tables(tree: Tree, seed: int = 42) -> dict[str, tuple[list[str], list]]:
    """Base tables for the three Figure 10 queries from one tree.

    - Delivery: ``assbl(Part, SPart)`` over all edges, ``basic(Part, Days)``
      weighting the leaves;
    - Management: ``report(Emp, Mgr)`` (edges reversed);
    - MLM: ``sponsor(M1, M2)`` (sponsor → member) and ``sales(M, P)``
      weighting every node.
    """
    rng = random.Random(seed)
    assbl = [(parent, child) for parent, child in tree.edges]
    basic = [(leaf, rng.randint(1, 30)) for leaf in tree.leaves]
    report = [(child, parent) for parent, child in tree.edges]
    sponsor = [(parent, child) for parent, child in tree.edges]
    nodes = {node for edge in tree.edges for node in edge} or {0}
    sales = [(node, round(rng.uniform(10.0, 1000.0), 2)) for node in nodes]
    return {
        "assbl": (["Part", "SPart"], assbl),
        "basic": (["Part", "Days"], basic),
        "report": (["Emp", "Mgr"], report),
        "sponsor": (["M1", "M2"], sponsor),
        "sales": (["M", "P"], sales),
    }


def random_graph(n: int, m: int, seed: int = 42,
                 weighted: bool = False,
                 acyclic: bool = False) -> list[tuple]:
    """Plain uniform random digraph used by tests and small demos."""
    rng = random.Random(seed)
    edges = set()
    attempts = 0
    while len(edges) < m and attempts < 20 * m:
        attempts += 1
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b:
            continue
        if acyclic and a > b:
            a, b = b, a
        edges.add((a, b))
    if weighted:
        return [(a, b, rng.randint(1, 100)) for a, b in sorted(edges)]
    return sorted(edges)
