"""Scaled proxies of the Table 1 real-world graphs.

The paper evaluates on livejournal (4.8M/69M), orkut (3.1M/117M), arabic
(22.7M/640M) and twitter (41.7M/1.47B).  Those downloads are unavailable
offline and far beyond single-process Python anyway, so — per the
reproduction's substitution rule — each graph is replaced by a synthetic
proxy that preserves the two properties the Section 8 analysis leans on:

1. the *density* (edges per vertex) of the original, and
2. a heavy-tailed degree distribution ("skewed datasets" are exactly what
   the paper credits for RaSQL's edge over Giraph on Figure 9), produced
   by preferential attachment with graph-specific skew exponents.

Vertex counts are scaled down by ``SCALE_DIVISOR`` (documented in
DESIGN.md and printed by the Figure 9 benchmark).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RealGraphSpec:
    """Original statistics from Table 1 plus the proxy's skew setting."""

    name: str
    vertices: int
    edges: int
    #: Preferential-attachment strength in [0, 1]; higher = heavier tail.
    skew: float

    @property
    def density(self) -> float:
        return self.edges / self.vertices


#: Table 1 of the paper, with skew settings: social networks (livejournal,
#: orkut, twitter) have power-law tails; twitter's is the most extreme
#: (celebrity hubs), arabic is a web crawl with strong host-locality hubs.
REAL_GRAPHS = {
    "livejournal": RealGraphSpec("livejournal", 4_847_572, 68_993_773, 0.55),
    "orkut": RealGraphSpec("orkut", 3_072_441, 117_185_083, 0.50),
    "arabic": RealGraphSpec("arabic", 22_744_080, 639_999_458, 0.70),
    "twitter": RealGraphSpec("twitter", 41_652_231, 1_468_365_182, 0.80),
}

#: Default scale-down factor for the proxies (see DESIGN.md).
SCALE_DIVISOR = 2000


def proxy_graph(name: str, scale_divisor: int = SCALE_DIVISOR,
                seed: int = 42, weighted: bool = False) -> list[tuple]:
    """Generate the scaled proxy of one Table 1 graph.

    Preferential attachment: each new edge's endpoint is, with probability
    ``skew``, a previously used vertex sampled from the attachment list
    (rich get richer); otherwise uniform.  Density matches the original.
    """
    spec = REAL_GRAPHS[name]
    rng = random.Random(seed)
    num_vertices = max(50, spec.vertices // scale_divisor)
    num_edges = int(num_vertices * spec.density)

    attachment: list[int] = []
    edges: list[tuple] = []
    for _ in range(num_edges):
        if attachment and rng.random() < spec.skew:
            dst = attachment[rng.randrange(len(attachment))]
        else:
            dst = rng.randrange(num_vertices)
        src = rng.randrange(num_vertices)
        if src == dst:
            continue
        attachment.append(dst)
        attachment.append(src)
        if weighted:
            edges.append((src, dst, rng.randrange(100)))
        else:
            edges.append((src, dst))
    return edges


def proxy_table(name: str, scale_divisor: int = SCALE_DIVISOR,
                seed: int = 42, weighted: bool = False):
    """``(columns, rows)`` pair ready for a Workload's tables dict."""
    columns = ["Src", "Dst", "Cost"] if weighted else ["Src", "Dst"]
    return columns, proxy_graph(name, scale_divisor, seed, weighted)
