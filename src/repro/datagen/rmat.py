"""RMAT graph generation (the GTgraph settings of Section 8).

The paper generates RMAT-n graphs with the recursive-matrix method using
``(a, b, c) = (0.45, 0.25, 0.15)`` (d = 0.15 implied), n vertices, 10n
directed edges and uniform integer weights in ``[0, 100)``.  Our generator
follows R-MAT exactly: each edge picks a quadrant of the adjacency matrix
recursively ``log2(n)`` times with noise-perturbed probabilities, yielding
the skewed degree distribution that distinguishes RMAT from uniform
random graphs (and that the Figure 9 skew discussion relies on).

Scale substitution: the paper sweeps 1M–128M vertices on 120 cores; the
benchmarks here sweep the same 8-point doubling grid three orders of
magnitude lower (1K–128K), as recorded in DESIGN.md.
"""

from __future__ import annotations

import random

#: The paper's quadrant probabilities.
RMAT_A, RMAT_B, RMAT_C = 0.45, 0.25, 0.15
EDGES_PER_VERTEX = 10
WEIGHT_RANGE = 100


def rmat_edges(num_vertices: int, num_edges: int | None = None,
               a: float = RMAT_A, b: float = RMAT_B, c: float = RMAT_C,
               seed: int = 42, weighted: bool = False,
               dedupe: bool = False) -> list[tuple]:
    """Generate an RMAT edge list.

    ``num_vertices`` is rounded up to the next power of two internally
    (standard R-MAT); emitted vertex ids stay below ``num_vertices``.
    ``dedupe`` removes parallel edges (the paper keeps multi-edges from
    GTgraph; both behaviours are exposed).
    """
    if num_vertices < 2:
        raise ValueError("need at least 2 vertices")
    if num_edges is None:
        num_edges = EDGES_PER_VERTEX * num_vertices
    rng = random.Random(seed)
    scale = max(1, (num_vertices - 1).bit_length())

    edges: list[tuple] = []
    seen: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = num_edges * 20
    while len(edges) < num_edges and attempts < max_attempts:
        attempts += 1
        src = dst = 0
        for _ in range(scale):
            # Perturb quadrant probabilities per level (Chakrabarti et al.).
            noise = 0.1
            a_n = a * (0.95 + noise * rng.random())
            b_n = b * (0.95 + noise * rng.random())
            c_n = c * (0.95 + noise * rng.random())
            d_n = (1 - a - b - c) * (0.95 + noise * rng.random())
            total = a_n + b_n + c_n + d_n
            roll = rng.random() * total
            src <<= 1
            dst <<= 1
            if roll < a_n:
                pass
            elif roll < a_n + b_n:
                dst |= 1
            elif roll < a_n + b_n + c_n:
                src |= 1
            else:
                src |= 1
                dst |= 1
        if src >= num_vertices or dst >= num_vertices or src == dst:
            continue
        if dedupe:
            if (src, dst) in seen:
                continue
            seen.add((src, dst))
        if weighted:
            edges.append((src, dst, rng.randrange(WEIGHT_RANGE)))
        else:
            edges.append((src, dst))
    return edges


def rmat_graph(num_vertices: int, seed: int = 42,
               weighted: bool = False) -> list[tuple]:
    """The paper's RMAT-n: n vertices, 10n edges, weights U[0, 100)."""
    return rmat_edges(num_vertices, seed=seed, weighted=weighted)
