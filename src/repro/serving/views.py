"""Served materialized views: named, maintained, concurrently readable.

:class:`repro.core.streaming.IncrementalView` does the heavy lifting
(monotone insert-only maintenance through the fixpoint's maintenance
terms); :class:`ServedView` is the thin service-facing wrapper that

- registers the view under a *name* clients address,
- routes inserts submitted through the service into the view's repair
  path (and records how many),
- serves ``read()`` to many concurrent clients **snapshot-consistently**:
  between two inserts every reader gets the *same* memoized relation
  object (``IncrementalView.result`` caches the final SELECT and drops
  the memo on insert), and the wrapper counts how many reads were
  answered from that snapshot without executor work.
"""

from __future__ import annotations

from repro.core.streaming import IncrementalView
from repro.relation import Relation


class ServedView:
    """One named incremental view owned by a :class:`QueryService`."""

    def __init__(self, name: str, view: IncrementalView):
        self.name = name
        self.view = view
        #: Lower-cased base tables the view maintains itself over; the
        #: service consults this to fan an insert out to affected views.
        self.tables = frozenset(view._tables)
        self.reads = 0
        self.snapshot_hits = 0
        self.maintenance_inserts = 0
        self.maintenance_iterations = 0

    def read(self) -> Relation:
        """The view's current result; memoized between inserts."""
        evaluations_before = self.view.result_evaluations
        relation = self.view.result()
        self.reads += 1
        if self.view.result_evaluations == evaluations_before:
            self.snapshot_hits += 1
        return relation

    def maintain(self, table: str, rows) -> int:
        """Apply an insert to the view; returns repair iterations."""
        iterations = self.view.insert(table, rows)
        self.maintenance_inserts += 1
        self.maintenance_iterations += iterations
        return iterations

    def report(self) -> dict:
        return {
            "name": self.name,
            "tables": sorted(self.tables),
            "reads": self.reads,
            "snapshot_hits": self.snapshot_hits,
            "snapshot_hit_rate": round(self.snapshot_hits / self.reads, 4)
                                 if self.reads else 0.0,
            "maintenance_inserts": self.maintenance_inserts,
            "maintenance_iterations": self.maintenance_iterations,
        }
