"""Seeded mixed read/insert workloads against a :class:`QueryService`.

One generator feeds both the CLI (``python -m repro workload``) and the
committed benchmark (``benchmarks/bench_serving.py``): a population of
named client sessions issues a seeded mix of

- **view reads** of a served incremental SSSP view (the hot path a
  serving deployment exists for — most answered from the memoized
  snapshot),
- **hot SQL** drawn from a small set of repeated statements (exercises
  the result cache; re-executes only after an insert bumps the
  catalog's data epoch),
- **pooled SQL** drawn from a larger statement pool shared across
  sessions (exercises the plan cache at a lower result-cache hit rate),
- **inserts** of fresh edges (invalidate caches, repair the served view
  incrementally).

Submission happens in bursts sized to the governor's capacity
(slots + queue), each burst drained before the next, so the admission
machinery is exercised — tickets queue and promote — without the
generator itself being rejected wholesale.  Everything is derived from
one seed: the op sequence, the scheduler's interleaving, and the
simulated clock are all deterministic, so p50/p99 latencies are
reproducible numbers, not noise.
"""

from __future__ import annotations

import math
import random

from repro.core.context import RaSQLContext
from repro.datagen import rmat_graph
from repro.queries.library import get_query
from repro.serving.service import QueryService

#: Request mix (fractions of the op stream, in this priority order).
DEFAULT_MIX = {
    "view_read": 0.70,
    "hot_sql": 0.15,
    "pooled_sql": 0.10,
    "insert": 0.05,
}

VIEW_NAME = "dist"


def build_service(num_workers: int = 4, seed: int = 7,
                  quick: bool = False, scheduler: str = "seeded",
                  max_concurrent: int = 4, max_queue: int = 8) -> QueryService:
    """A context with an RMAT edge table, a served SSSP view, governance."""
    from repro.core.governor import QueryGovernor

    edges = rmat_graph(180 if quick else 360, seed=seed, weighted=True)
    ctx = RaSQLContext(num_workers=num_workers)
    ctx.governor = QueryGovernor(max_concurrent=max_concurrent,
                                 max_queue=max_queue,
                                 metrics=ctx.metrics)
    ctx.register_table("edge", ["Src", "Dst", "Cost"], edges)
    service = QueryService(ctx, scheduler=scheduler, seed=seed)
    service.create_view(VIEW_NAME, get_query("sssp").formatted(source=0))
    return service


def _statement_pools() -> tuple[list[str], list[str]]:
    hot = [
        "SELECT count(*) FROM edge",
        get_query("reach").formatted(source=0),
        get_query("sssp").formatted(source=0),
    ]
    pooled = [get_query("reach").formatted(source=s) for s in range(1, 9)]
    return hot, pooled


def generate_ops(clients: int, requests: int, seed: int,
                 mix: dict | None = None) -> list[tuple]:
    """The op stream: ``(client_name, kind, payload)`` tuples."""
    mix = mix or DEFAULT_MIX
    rng = random.Random(seed)
    hot, pooled = _statement_pools()
    kinds = list(mix)
    weights = [mix[k] for k in kinds]
    ops: list[tuple] = []
    next_node = 10_000  # insert edges from fresh node ids: no duplicates
    for i in range(requests):
        client = f"c{i % clients}"  # every client gets traffic
        kind = rng.choices(kinds, weights=weights)[0]
        if kind == "view_read":
            ops.append((client, "view_read", VIEW_NAME))
        elif kind == "hot_sql":
            ops.append((client, "sql", rng.choice(hot)))
        elif kind == "pooled_sql":
            ops.append((client, "sql", rng.choice(pooled)))
        else:
            rows = [(rng.randrange(0, 64), next_node,
                     float(rng.randint(1, 10)))]
            next_node += 1
            ops.append((client, "insert", ("edge", rows)))
    return ops


def submit_op(service: QueryService, op: tuple):
    client, kind, payload = op
    session = service.session(client)
    if kind == "view_read":
        return session.read_view(payload)
    if kind == "sql":
        return session.sql(payload)
    table, rows = payload
    return session.insert(table, rows)


def run_ops(service: QueryService, ops: list[tuple],
            burst: int | None = None) -> list:
    """Submit in governor-capacity bursts, draining between them."""
    governor = service.ctx.governor
    burst = burst or (governor.max_concurrent + governor.max_queue)
    futures = []
    for start in range(0, len(ops), burst):
        futures.extend(submit_op(service, op)
                       for op in ops[start:start + burst])
        service.drain()
    return futures


def percentile(values: list[float], pct: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, math.ceil(pct / 100.0 * len(ordered)) - 1)
    return ordered[rank]


def _latency_stats(futures) -> dict:
    latencies = [f.latency_s for f in futures if f.ok]
    return {
        "count": len(latencies),
        "p50_s": round(percentile(latencies, 50), 6),
        "p99_s": round(percentile(latencies, 99), 6),
        "mean_s": round(sum(latencies) / len(latencies), 6)
                  if latencies else 0.0,
    }


def summarize(service: QueryService, futures: list) -> dict:
    """The workload's scorecard: latency percentiles + cache hit rates."""
    by_kind = {}
    for kind in ("sql", "view_read", "insert"):
        subset = [f for f in futures if f.kind == kind]
        if subset:
            by_kind[kind] = _latency_stats(subset)
    snapshot_reads = service.metrics.get("serving_view_snapshot_hits")
    view_reads = service.metrics.get("serving_view_reads")
    return {
        "clients": len(service._sessions),
        "requests": len(futures),
        "completed": sum(1 for f in futures if f.ok),
        "failed": sum(1 for f in futures if f.done and not f.ok),
        "rejected": int(service.metrics.get("serving_rejected")),
        "queued": sum(1 for f in futures if f.queued),
        "latency": {"overall": _latency_stats(futures), **by_kind},
        "cache": {
            "plan": service.plan_cache.report(),
            "result": service.result_cache.report(),
            "view_snapshot_hit_rate":
                round(snapshot_reads / view_reads, 4) if view_reads else 0.0,
        },
        "sim_time_s": round(service.metrics.sim_time, 4),
        "governor": service.ctx.governor.report(),
    }


def run_workload(clients: int, requests: int, seed: int = 7,
                 quick: bool = False, num_workers: int = 4,
                 scheduler: str = "seeded") -> dict:
    """Build the demo service, run the seeded mix, return the summary."""
    service = build_service(num_workers=num_workers, seed=seed, quick=quick,
                            scheduler=scheduler)
    ops = generate_ops(clients, requests, seed)
    futures = run_ops(service, ops)
    summary = summarize(service, futures)
    summary["seed"] = seed
    summary["scheduler"] = scheduler
    return summary
