"""Write-ahead log for the query service: crash-durable request intent.

The serving tier's in-memory state — pending backlog, served views,
``execution_order`` — dies with the driver process.  The WAL makes the
*requests* durable so a restarted :class:`repro.serving.QueryService`
can rebuild all of it (:meth:`QueryService.recover`): every submission
is logged **before** admission, every completion after, and view DDL
when it lands.  Replay then re-creates the views, re-applies the
completed inserts in their original completion order (with strict
``Catalog.data_version`` checks — a divergent epoch means the base
catalog was not restored to its bootstrap state, and continuing would
mix data epochs), and re-admits everything in flight.

Format: JSON lines, one record per line, each wrapped with a content
hash::

    {"crc": "<sha256(rec)[:16]>", "rec": {"seq": 3, "type": "submit", ...}}

A torn tail — the driver died mid-write — is expected, not fatal:
:meth:`WriteAheadLog.read` stops at the first undecodable or
hash-mismatched line and reports how many trailing lines it dropped.
Sequence numbers continue across restarts (the recovered service appends
after the crash point), so one file tells the whole multi-incarnation
story in order.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.errors import WALError

__all__ = ["WriteAheadLog"]


def _crc(rec: dict) -> str:
    body = json.dumps(rec, sort_keys=True)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


class WriteAheadLog:
    """Append-only JSONL log with per-record content hashes.

    Opening an existing file continues its sequence numbering; records
    are flushed per append (the crash model is process death between
    lines, which replay tolerates as a torn tail).
    """

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        try:
            os.makedirs(directory, exist_ok=True)
            existing, _ = self.read(path) if os.path.exists(path) else ([], 0)
            self.seq = (existing[-1]["seq"] + 1) if existing else 0
            self._fh = open(path, "a", encoding="utf-8")
        except OSError as exc:
            raise WALError(f"cannot open WAL {path!r}: {exc}") from exc

    def append(self, rec: dict) -> int:
        """Stamp *rec* with the next sequence number and persist it."""
        rec = dict(rec)
        rec["seq"] = self.seq
        self.seq += 1
        line = json.dumps({"crc": _crc(rec), "rec": rec}, sort_keys=True)
        try:
            self._fh.write(line + "\n")
            self._fh.flush()
        except (OSError, ValueError) as exc:
            raise WALError(
                f"cannot append to WAL {self.path!r}: {exc}") from exc
        return rec["seq"]

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass

    @staticmethod
    def read(path: str) -> tuple[list[dict], int]:
        """All intact records plus the count of dropped trailing lines.

        Reading stops at the first torn or hash-mismatched line; every
        line from there on counts as dropped.  A record whose effects
        are truncated mid-log (rather than at the tail) would be a real
        corruption, but distinguishing that from a torn tail is the
        replayer's job — this reader only guarantees each returned
        record is exactly what was written.
        """
        if not os.path.exists(path):
            raise WALError(f"no WAL at {path!r}")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError as exc:
            raise WALError(f"cannot read WAL {path!r}: {exc}") from exc
        records: list[dict] = []
        for index, line in enumerate(lines):
            if not line.strip():
                return records, len(lines) - index
            try:
                wrapped = json.loads(line)
                rec = wrapped["rec"]
                ok = _crc(rec) == wrapped.get("crc")
            except (ValueError, KeyError, TypeError):
                ok = False
            if not ok:
                return records, len(lines) - index
            records.append(rec)
        return records, 0
