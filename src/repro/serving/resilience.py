"""Overload and failure hygiene for the serving tier.

Two standard service patterns, adapted to the simulated clock:

- :class:`RetryPolicy` — transient infrastructure failures (a task that
  exhausted its attempt budget, a cluster momentarily out of healthy
  workers) are retried a bounded number of times with exponential
  backoff plus jitter.  The jitter draws from a **seeded** RNG handed in
  by the service — never wall-clock entropy — so a replay of the same
  workload backs off by the same simulated amounts and stays bit-exact
  (the same discipline as ``RecoveryManager.backoff_seconds``).
- :class:`CircuitBreaker` — a query *shape* (whitespace-normalized
  statement text) that keeps failing gets its traffic shed at the
  service door with :class:`repro.errors.CircuitOpenError` instead of
  burning cluster time on a query that will fail again.  Classic
  closed → open → half-open: after ``failure_threshold`` consecutive
  failures the shape opens for ``cooldown_s`` simulated seconds; the
  first request after cooldown is the half-open probe — success closes
  the breaker, failure re-opens it for a fresh cooldown.

Typed errors that represent the *caller's* problem (analysis errors,
deadline overruns, memory overflows) are neither retried nor counted by
default — retrying them wastes cluster time and shedding them hides the
actionable error payload the client needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import (
    CircuitOpenError,
    NoHealthyWorkersError,
    TaskRetryExhaustedError,
)

__all__ = ["CircuitBreaker", "RetryPolicy"]

#: Errors worth retrying: infrastructure gave out mid-query, and a
#: re-execution against the same inputs can legitimately succeed.
RETRYABLE_ERRORS = (TaskRetryExhaustedError, NoHealthyWorkersError)


@dataclass
class RetryPolicy:
    """Bounded seeded-jitter exponential backoff for transient failures."""

    max_retries: int = 2
    base_backoff_s: float = 0.05
    #: Jitter fraction: each backoff is scaled by ``1 + jitter * U[0,1)``
    #: drawn from ``rng`` (seeded by the service — determinism contract).
    jitter: float = 0.5
    retryable: tuple = RETRYABLE_ERRORS
    rng: random.Random | None = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_backoff_s < 0 or self.jitter < 0:
            raise ValueError("base_backoff_s and jitter must be >= 0")

    def should_retry(self, error: Exception, attempt: int) -> bool:
        """Retry *attempt* (0-based count of failures so far)?"""
        return (attempt < self.max_retries
                and isinstance(error, self.retryable))

    def backoff_s(self, attempt: int) -> float:
        """Simulated seconds to back off before re-attempt *attempt*."""
        backoff = self.base_backoff_s * (2.0 ** attempt)
        if self.jitter and self.rng is not None:
            backoff *= 1.0 + self.jitter * self.rng.random()
        return backoff


@dataclass
class _Shape:
    failures: int = 0
    state: str = "closed"  # closed | open | half_open
    open_until: float = 0.0


@dataclass
class CircuitBreaker:
    """Per-query-shape failure tracker with open/half-open shedding."""

    failure_threshold: int = 5
    cooldown_s: float = 60.0
    _shapes: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got "
                f"{self.failure_threshold}")
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got "
                             f"{self.cooldown_s}")

    def _shape(self, key: str) -> _Shape:
        if key not in self._shapes:
            self._shapes[key] = _Shape()
        return self._shapes[key]

    def check(self, key: str, now: float) -> None:
        """Gate one request; raises :class:`CircuitOpenError` when shedding.

        Called with the simulated clock.  An open shape whose cooldown
        has elapsed transitions to half-open and lets this request
        through as the probe.
        """
        shape = self._shape(key)
        if shape.state == "open":
            if now >= shape.open_until:
                shape.state = "half_open"
                return
            raise CircuitOpenError(
                f"circuit open for query shape {key[:60]!r}: "
                f"{shape.failures} consecutive failures; next probe in "
                f"{shape.open_until - now:.2f}s (simulated)",
                shape=key, failures=shape.failures,
                retry_after_s=shape.open_until - now)

    def record_success(self, key: str) -> None:
        shape = self._shape(key)
        shape.failures = 0
        shape.state = "closed"

    def record_failure(self, key: str, now: float) -> None:
        shape = self._shape(key)
        shape.failures += 1
        if (shape.state == "half_open"
                or shape.failures >= self.failure_threshold):
            shape.state = "open"
            shape.open_until = now + self.cooldown_s

    def state(self, key: str) -> str:
        return self._shapes.get(key, _Shape()).state

    def report(self) -> dict:
        return {key: {"state": shape.state, "failures": shape.failures}
                for key, shape in sorted(self._shapes.items())
                if shape.failures or shape.state != "closed"}
