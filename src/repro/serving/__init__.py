"""repro.serving — a multi-tenant query service over one RaSQL session.

The paper positions RaSQL as a *service* for big-data analytics; this
package supplies the serving tier the core engine lacks: named client
sessions submit SQL, served-view reads, and inserts concurrently, a
seeded cooperative driver executes them deterministically through the
session's admission governor, and plan/result caches plus memoized
incremental views absorb the repeated-read traffic that dominates a
served deployment.

Public API:

- :class:`QueryService` — submit / drain / create_view; the driver.
- :class:`Session` — one named tenant, with per-session counters.
- :class:`QueryFuture` — handle to a submitted request.
- :class:`ServedView` — a named, maintained, snapshot-consistent view.
- :class:`PlanCache` / :class:`ResultCache` — the shared caches.
- :func:`run_workload` — the seeded mixed workload (CLI + benchmark).
- :class:`WriteAheadLog` — durable request intent; feeds
  :meth:`QueryService.recover` after a driver crash.
- :class:`RetryPolicy` / :class:`CircuitBreaker` — transient-failure
  retries (seeded jitter) and per-shape load shedding.
"""

from repro.serving.cache import PlanCache, ResultCache, normalize_sql
from repro.serving.resilience import CircuitBreaker, RetryPolicy
from repro.serving.service import QueryFuture, QueryService
from repro.serving.session import Session
from repro.serving.views import ServedView
from repro.serving.wal import WriteAheadLog
from repro.serving.workload import run_workload

__all__ = [
    "CircuitBreaker",
    "PlanCache",
    "QueryFuture",
    "QueryService",
    "ResultCache",
    "RetryPolicy",
    "ServedView",
    "Session",
    "WriteAheadLog",
    "normalize_sql",
    "run_workload",
]
