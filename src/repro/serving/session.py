"""Named client sessions of the query service.

A session is the unit of tenancy: every request enters the service
tagged with one, its traffic lands in the shared
:class:`repro.engine.metrics.MetricsRegistry` under the
``session.<name>.`` prefix (via :meth:`MetricsRegistry.scoped`), and the
convenience methods here are just sugar over the service's submit API.

Counters maintained per session (all lazily created):

- ``submitted`` / ``completed`` / ``failed`` / ``rejected``
- ``sql_queries`` / ``view_reads`` / ``inserts``
- ``result_cache_hits`` / ``plan_cache_hits`` — this tenant's share of
  the shared caches' traffic
- ``latency_s`` — summed simulated end-to-end latency, so
  ``latency_s / completed`` is the tenant's mean
"""

from __future__ import annotations


class Session:
    """One named client of a :class:`repro.serving.QueryService`."""

    def __init__(self, service, name: str):
        self.service = service
        self.name = name
        self.counters = service.ctx.metrics.scoped(f"session.{name}")

    # Sugar over the service API; all return QueryFutures.

    def sql(self, query: str, config=None):
        return self.service.submit(self, query, config=config)

    def read_view(self, view_name: str):
        return self.service.submit_view_read(self, view_name)

    def insert(self, table: str, rows):
        return self.service.submit_insert(self, table, rows)

    def report(self) -> dict:
        """This session's counters, prefix stripped."""
        return self.counters.snapshot()

    def __repr__(self) -> str:
        return f"Session({self.name!r})"
