"""The multi-tenant query service: many in-flight requests, one cluster.

:class:`QueryService` turns a :class:`repro.core.context.RaSQLContext`
into a served endpoint.  Clients (named :class:`~repro.serving.session.
Session` objects) *submit* work — SQL statements, reads of served
incremental views, base-table inserts — and get a :class:`QueryFuture`
back immediately; a cooperative driver later executes the backlog and
resolves the futures.

Scheduling model
----------------

Real Spark SQL servers (the Thrift server, Livy) multiplex sessions over
one SparkContext with a fair/FIFO scheduler.  Here the cluster is
*simulated* — one global clock, one metrics registry — so a preemptive
thread pool would race on shared simulated state and destroy the
bit-exact determinism every differential suite in this repo relies on.
The driver is therefore **cooperative**: requests interleave at request
granularity, and the interleaving is chosen by a seeded scheduler, so

- ``scheduler="fifo"`` replays submissions in order;
- ``scheduler="seeded"`` picks uniformly (``random.Random(seed)``) among
  the *dispatchable* requests, modeling concurrent clients racing to
  the driver — deterministically reproducible from the seed.

Admission is decoupled from execution: the governor ticket is acquired
at **submit** time (so a burst fills slots, queues FIFO, and rejects
beyond capacity exactly as :class:`repro.core.governor.QueryGovernor`
specifies), but a request only becomes dispatchable once its ticket
holds a slot (``ticket.waiting`` is ``False`` — promotions happen as
earlier requests release).  Tickets are released on *every* completion
path: success, analysis errors, deadline aborts, memory overflows.

Caching
-------

SQL statements pass through the shared :class:`~repro.serving.cache.
PlanCache` (normalized text + catalog schema epoch) and
:class:`~repro.serving.cache.ResultCache` (… + data epoch + config);
served views memoize their final SELECT between inserts.  An insert
submitted through the service appends to the session catalog (bumping
``Catalog.data_version``, which invalidates result-cache entries by
key) and fans out to every served view reading that table.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.checkpoint import CheckpointStore, make_query_id
from repro.core.config import ExecutionConfig
from repro.core.context import _query_label
from repro.core.streaming import IncrementalView
from repro.engine.serialization import rows_size
from repro.errors import (
    AdmissionRejectedError,
    AnalysisError,
    CircuitOpenError,
    RaSQLError,
    WALError,
)
from repro.relation import Relation
from repro.serving.cache import PlanCache, ResultCache, normalize_sql
from repro.serving.resilience import CircuitBreaker, RetryPolicy
from repro.serving.session import Session
from repro.serving.views import ServedView
from repro.serving.wal import WriteAheadLog


@dataclass
class QueryFuture:
    """Handle to one submitted request; resolved by the driver.

    ``submitted_at`` / ``finished_at`` are simulated-clock readings, so
    :attr:`latency_s` is deterministic end-to-end simulated latency —
    admission queue charge included (the clock advances under the
    ``admission-wait`` label during submit for queued tickets).
    """

    request_id: int
    session: str
    kind: str  # "sql" | "view_read" | "insert"
    label: str
    submitted_at: float
    started_at: float | None = None
    finished_at: float | None = None
    value: object | None = None
    error: Exception | None = None
    done: bool = False
    #: Where the answer came from: "executed", "result_cache",
    #: "view_snapshot", "view_evaluated", "applied", "rejected", or
    #: "resumed" (continued from a durable checkpoint after recovery).
    source: str | None = None
    queued: bool = False

    def result(self):
        """The request's value; re-raises its error; refuses if pending."""
        if not self.done:
            raise RuntimeError(
                f"request #{self.request_id} ({self.label!r}) is still "
                f"pending — drain() or step() the service first")
        if self.error is not None:
            raise self.error
        return self.value

    @property
    def ok(self) -> bool:
        return self.done and self.error is None

    @property
    def latency_s(self) -> float:
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.submitted_at


@dataclass
class _Request:
    future: QueryFuture
    session: Session
    ticket: object  # AdmissionTicket
    sql: str | None = None
    config: object | None = None
    view_name: str | None = None
    table: str | None = None
    rows: list = field(default_factory=list)
    #: WAL recovery found this request in flight with checkpointing on:
    #: try to continue its fixpoint from the durable checkpoint.
    resume_checkpoint: bool = False
    #: Transient-failure re-executions consumed so far (RetryPolicy).
    retries: int = 0


class QueryService:
    """A served, cached, admission-controlled front end to one context."""

    def __init__(self, ctx, scheduler: str = "seeded", seed: int = 0,
                 service_overhead_s: float = 0.0005,
                 plan_cache_size: int = 128, result_cache_size: int = 256,
                 wal_path: str | None = None,
                 retry_policy: RetryPolicy | None = None,
                 circuit_breaker: CircuitBreaker | None = None):
        if scheduler not in ("fifo", "seeded"):
            raise ValueError(
                f"scheduler must be 'fifo' or 'seeded', got {scheduler!r}")
        if service_overhead_s < 0:
            raise ValueError("service_overhead_s must be >= 0")
        self.ctx = ctx
        self.scheduler = scheduler
        self.seed = seed
        self.service_overhead_s = service_overhead_s
        self.metrics = ctx.metrics
        self.plan_cache = PlanCache(plan_cache_size, metrics=self.metrics)
        self.result_cache = ResultCache(result_cache_size,
                                        metrics=self.metrics)
        self._rng = random.Random(seed)
        self._sessions: dict[str, Session] = {}
        self._views: dict[str, ServedView] = {}
        self._pending: list[_Request] = []
        self._completed: list[QueryFuture] = []
        self._next_request_id = 1
        #: Execution order of completed requests (request ids), which the
        #: interleaving differential replays serially.
        self.execution_order: list[int] = []
        self.retry_policy = retry_policy or RetryPolicy()
        if self.retry_policy.rng is None:
            # Seeded, decorrelated from the scheduler draw — never
            # wall-clock entropy (replay-twice-identical contract).
            self.retry_policy.rng = random.Random(
                (seed * 2654435761 + 73) % 2**32)
        self.breaker = circuit_breaker or CircuitBreaker()
        #: Futures rebuilt by :meth:`recover` for in-flight WAL entries,
        #: keyed by their original request id.
        self.recovered_futures: dict[int, QueryFuture] = {}
        self._replaying = False
        self.wal = WriteAheadLog(wal_path) if wal_path else None
        if self.wal is not None and self.wal.seq == 0:
            # Fresh log: stamp the bootstrap epoch.  Recovery refuses a
            # catalog whose data_version differs (completed inserts are
            # re-applied from the log on top of the bootstrap state).
            self.wal.append({"type": "header", "seed": seed,
                             "scheduler": scheduler,
                             "data_version": ctx.catalog.data_version})

    def _log(self, rec: dict) -> None:
        if self.wal is not None and not self._replaying:
            self.wal.append(rec)

    # ------------------------------------------------------------------
    # sessions and views
    # ------------------------------------------------------------------

    def session(self, name: str) -> Session:
        """The named session, created on first use."""
        if name not in self._sessions:
            self._sessions[name] = Session(self, name)
        return self._sessions[name]

    def create_view(self, name: str, sql: str) -> ServedView:
        """Materialize a served incremental view under ``name``.

        DDL runs synchronously (the initial fixpoint executes now), under
        a governor ticket so its memory reservation is accounted like any
        query's.
        """
        key = name.lower()
        if key in self._views:
            raise AnalysisError(f"view {name!r} is already served")
        ticket = self.ctx.governor.admit(
            f"create view {name}", self.ctx._estimate_query_bytes(sql))
        try:
            view = IncrementalView(self.ctx, sql)
        finally:
            self.ctx.governor.release(ticket)
        served = ServedView(name, view)
        self._views[key] = served
        self.metrics.inc("serving_views_created")
        self._log({"type": "create_view", "name": name, "sql": sql})
        return served

    def view(self, name: str) -> ServedView:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise AnalysisError(
                f"no served view {name!r} (serving: "
                f"{sorted(v.name for v in self._views.values())})") from None

    # ------------------------------------------------------------------
    # submission (tickets acquired here)
    # ------------------------------------------------------------------

    def submit(self, session: Session, sql: str, config=None) -> QueryFuture:
        """Submit a SQL statement; returns immediately with a future."""
        future = self._new_future(session, "sql", _query_label(sql))
        session.counters.inc("sql_queries")
        # Intent is durable *before* admission: a rejected request still
        # leaves a (submit, complete) pair, an admitted one that dies
        # mid-flight leaves submit-without-complete for re-admission.
        self._log({"type": "submit", "request_id": future.request_id,
                   "session": session.name, "kind": "sql",
                   "label": future.label, "sql": sql,
                   "config": (dataclasses.asdict(config)
                              if config is not None else None)})
        estimate = self.ctx._estimate_query_bytes(sql)
        request = self._admit(future, session, estimate)
        if request is not None:
            request.sql = sql
            request.config = config
        return future

    def submit_view_read(self, session: Session,
                         view_name: str) -> QueryFuture:
        """Submit a read of a served view (cheap: state is resident)."""
        served = self.view(view_name)  # raises for unknown views
        future = self._new_future(session, "view_read",
                                  f"read view {served.name}")
        session.counters.inc("view_reads")
        self._log({"type": "submit", "request_id": future.request_id,
                   "session": session.name, "kind": "view_read",
                   "label": future.label, "view_name": served.name})
        request = self._admit(future, session, estimated_bytes=0)
        if request is not None:
            request.view_name = served.name
        return future

    def submit_insert(self, session: Session, table: str,
                      rows: Iterable[Sequence]) -> QueryFuture:
        """Submit a base-table insert; maintains every affected view."""
        rows = [tuple(r) for r in rows]
        future = self._new_future(session, "insert",
                                  f"insert {len(rows)} rows into {table}")
        session.counters.inc("inserts")
        self._log({"type": "submit", "request_id": future.request_id,
                   "session": session.name, "kind": "insert",
                   "label": future.label, "table": table,
                   "rows": [list(r) for r in rows]})
        request = self._admit(future, session, rows_size(rows))
        if request is not None:
            request.table = table
            request.rows = rows
        return future

    def _new_future(self, session: Session, kind: str,
                    label: str) -> QueryFuture:
        future = QueryFuture(request_id=self._next_request_id,
                             session=session.name, kind=kind, label=label,
                             submitted_at=self.metrics.sim_time)
        self._next_request_id += 1
        session.counters.inc("submitted")
        self.metrics.inc("serving_requests")
        return future

    def _admit(self, future: QueryFuture, session: Session,
               estimated_bytes: int) -> _Request | None:
        """Acquire the governor ticket; on rejection fail the future now."""
        try:
            ticket = self.ctx.governor.admit(
                f"{session.name}: {future.label}", estimated_bytes)
        except AdmissionRejectedError as exc:
            session.counters.inc("rejected")
            self.metrics.inc("serving_rejected")
            self._finish(future, session, error=exc, source="rejected")
            return None
        future.queued = ticket.queued
        request = _Request(future=future, session=session, ticket=ticket)
        self._pending.append(request)
        return request

    # ------------------------------------------------------------------
    # the cooperative driver
    # ------------------------------------------------------------------

    def step(self) -> QueryFuture | None:
        """Execute one dispatchable request; ``None`` when idle.

        Only requests whose tickets hold admission slots are eligible
        (queued tickets become eligible when promotion flips them off
        ``waiting``); among those the configured scheduler picks next.
        """
        ready = [r for r in self._pending if not r.ticket.waiting]
        if not ready:
            if self._pending:
                raise RuntimeError(
                    "serving backlog is stuck: every pending ticket is "
                    "still queued (governor promotion failed to run?)")
            return None
        if self.scheduler == "fifo":
            request = ready[0]
        else:
            request = self._rng.choice(ready)
        self._pending.remove(request)
        return self._execute(request)

    def drain(self) -> list[QueryFuture]:
        """Run the backlog to empty; returns the futures in finish order."""
        finished = []
        while True:
            future = self.step()
            if future is None:
                return finished
            finished.append(future)

    # ------------------------------------------------------------------
    # execution paths (tickets released here, on every path)
    # ------------------------------------------------------------------

    def _execute(self, request: _Request) -> QueryFuture:
        future = request.future
        future.started_at = self.metrics.sim_time
        if self.service_overhead_s:
            self.metrics.advance(self.service_overhead_s,
                                 label="serving-overhead")
        self.execution_order.append(future.request_id)
        try:
            while True:
                try:
                    if future.kind == "sql":
                        value, source = self._run_sql_request(request)
                    elif future.kind == "view_read":
                        value, source = self._run_view_read(request)
                    else:
                        value, source = self._run_insert(request)
                except RaSQLError as exc:
                    if (future.kind == "sql"
                            and self.retry_policy.should_retry(
                                exc, request.retries)):
                        # Transient infrastructure failure: hold the
                        # ticket, back off (seeded jitter), re-execute.
                        backoff = self.retry_policy.backoff_s(
                            request.retries)
                        request.retries += 1
                        self.metrics.inc("serving_retries")
                        request.session.counters.inc("retries")
                        if backoff > 0:
                            self.metrics.advance(backoff,
                                                 label="retry-backoff")
                        continue
                    # The original typed error reaches the future intact
                    # — payloads (partial_trace, requested_bytes,
                    # retry_after_s) are part of the API contract.
                    self._finish(future, request.session, error=exc,
                                 source="error")
                else:
                    self._finish(future, request.session, value=value,
                                 source=source)
                return future
        finally:
            # The one place tickets die: success, analysis errors,
            # deadline aborts, memory overflows all pass through here.
            # (A DriverCrashError skips it by design — the process is
            # dead; recovery re-admits from the WAL.)
            self.ctx.governor.release(request.ticket)

    def _run_sql_request(self, request: _Request) -> tuple[Relation, str]:
        sql = request.sql
        shape = normalize_sql(sql)
        try:
            self.breaker.check(shape, self.metrics.sim_time)
        except CircuitOpenError:
            self.metrics.inc("serving_circuit_shed")
            request.session.counters.inc("circuit_shed")
            raise
        try:
            value, source = self._run_sql_inner(request)
        except RaSQLError:
            self.breaker.record_failure(shape, self.metrics.sim_time)
            raise
        self.breaker.record_success(shape)
        return value, source

    def _run_sql_inner(self, request: _Request) -> tuple[Relation, str]:
        session, sql = request.session, request.sql
        config = request.config or self.ctx.config
        catalog = self.ctx.catalog
        result_key = self.result_cache.key(sql, catalog, config)
        found, cached = self.result_cache.lookup(result_key)
        if found:
            session.counters.inc("result_cache_hits")
            return cached, "result_cache"

        ticket = request.ticket
        admission = {"queued": ticket.queued, "wait_s": ticket.wait_s,
                     "reserved_bytes": ticket.reserved_bytes,
                     "session": session.name}

        if request.resume_checkpoint and config.checkpointing:
            qid = make_query_id(sql)
            if CheckpointStore(config.checkpoint_dir).has_resumable(qid):
                result = self.ctx.resume_admitted(
                    qid, config, label=request.future.label,
                    admission=admission)
                self.metrics.inc("serving_checkpoint_resumes")
                self.result_cache.store(result_key, result)
                return result, "resumed"
            # Crashed before its first checkpoint: plain re-execution.
            request.resume_checkpoint = False

        plan_key = self.plan_cache.key(sql, catalog, config)
        plan_found, analyzed = self.plan_cache.lookup(plan_key)
        if plan_found:
            session.counters.inc("plan_cache_hits")
        else:
            analyzed = self.ctx.analyze_query(sql, config)
            self.plan_cache.store(plan_key, analyzed)

        result = self.ctx.execute_admitted(
            sql, config, label=request.future.label, analyzed=analyzed,
            admission=admission)
        self.result_cache.store(result_key, result)
        return result, "executed"

    def _run_view_read(self, request: _Request) -> tuple[Relation, str]:
        served = self.view(request.view_name)
        hits_before = served.snapshot_hits
        relation = served.read()
        self.metrics.inc("serving_view_reads")
        if served.snapshot_hits > hits_before:
            self.metrics.inc("serving_view_snapshot_hits")
            request.session.counters.inc("view_snapshot_hits")
            return relation, "view_snapshot"
        return relation, "view_evaluated"

    def _run_insert(self, request: _Request) -> tuple[int, str]:
        table, rows = request.table, request.rows
        # Catalog first: append_rows validates the schema and bumps
        # data_version, which retires every result-cache entry by key.
        appended = self.ctx.catalog.append_rows(table, rows)
        self.metrics.inc("serving_inserts")
        self.metrics.inc("serving_rows_inserted", appended)
        if appended:
            key = table.lower()
            for served in self._views.values():
                if key in served.tables:
                    served.maintain(table, rows)
        return appended, "applied"

    def _finish(self, future: QueryFuture, session: Session, value=None,
                error=None, source=None) -> None:
        future.value = value
        future.error = error
        future.source = source
        future.finished_at = self.metrics.sim_time
        future.done = True
        self._completed.append(future)
        session.counters.inc("failed" if error is not None else "completed")
        session.counters.inc("latency_s", future.latency_s)
        self._log({"type": "complete", "request_id": future.request_id,
                   "ok": error is None, "source": source,
                   "error": type(error).__name__ if error else None,
                   "data_version": self.ctx.catalog.data_version})

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(cls, ctx, wal_path: str, **kwargs) -> "QueryService":
        """Rebuild a crashed service from its write-ahead log.

        ``ctx`` must hold the *bootstrap* catalog — the base tables as
        they were when the dead service was constructed (its WAL header
        pinned that ``data_version``); every visible change since then
        came through the service and is replayed from the log: served
        views are re-created, completed inserts re-applied in their
        original completion order (each checked against the
        ``data_version`` it originally landed on), ``execution_order``
        is pre-filled with the completed prefix, and submitted-but-
        unfinished requests are re-admitted with their original request
        ids (checkpointed SQL queries resume their fixpoint from the
        last durable iteration).  ``drain()`` the returned service to
        run the re-admitted backlog; :attr:`recovered_futures` maps the
        original request ids to the new futures.
        """
        records, truncated = WriteAheadLog.read(wal_path)
        if not records or records[0].get("type") != "header":
            raise WALError(
                f"WAL {wal_path!r} has no header record — not a service "
                f"log, or its first line was lost")
        header = records[0]
        if ctx.catalog.data_version != header["data_version"]:
            raise WALError(
                f"recovered catalog is at data_version "
                f"{ctx.catalog.data_version} but the WAL was bootstrapped "
                f"at {header['data_version']}; restore the base tables to "
                f"their bootstrap state first — completed inserts are "
                f"re-applied from the log")
        service = cls(ctx, scheduler=header["scheduler"],
                      seed=header["seed"], wal_path=wal_path, **kwargs)
        service._replaying = True
        try:
            service._replay(records[1:])
        finally:
            service._replaying = False
        if truncated:
            service.metrics.inc("wal_torn_lines", truncated)
        service.metrics.inc("serving_recoveries")
        return service

    def _replay(self, records: list[dict]) -> None:
        submits: dict[int, dict] = {}
        max_id = 0
        for rec in records:
            if rec["type"] == "submit":
                submits[rec["request_id"]] = rec
                max_id = max(max_id, rec["request_id"])

        for rec in records:
            kind = rec["type"]
            if kind == "create_view":
                self.create_view(rec["name"], rec["sql"])
            elif kind == "complete":
                rid = rec["request_id"]
                sub = submits.pop(rid, None)
                if sub is None:
                    raise WALError(
                        f"WAL complete record for request #{rid} has no "
                        f"matching submit — log is damaged beyond a torn "
                        f"tail")
                if rec.get("source") != "rejected":
                    self.execution_order.append(rid)
                if sub["kind"] == "insert" and rec["ok"]:
                    rows = [tuple(r) for r in sub["rows"]]
                    appended = self.ctx.catalog.append_rows(
                        sub["table"], rows)
                    if appended:
                        key = sub["table"].lower()
                        for served in self._views.values():
                            if key in served.tables:
                                served.maintain(sub["table"], rows)
                    self.metrics.inc("wal_replayed_inserts")
                    logged = rec.get("data_version")
                    if (logged is not None
                            and self.ctx.catalog.data_version != logged):
                        raise WALError(
                            f"insert #{rid} replayed to data_version "
                            f"{self.ctx.catalog.data_version} but "
                            f"originally landed on {logged} — the "
                            f"recovered catalog diverged from the logged "
                            f"history")

        # Whatever never completed was in flight when the driver died:
        # re-admit under the original request ids, in submission order.
        for rid in sorted(submits):
            sub = submits[rid]
            session = self.session(sub["session"])
            future = QueryFuture(request_id=rid, session=sub["session"],
                                 kind=sub["kind"], label=sub["label"],
                                 submitted_at=self.metrics.sim_time)
            if sub["kind"] == "sql":
                estimate = self.ctx._estimate_query_bytes(sub["sql"])
            elif sub["kind"] == "insert":
                estimate = rows_size([tuple(r) for r in sub["rows"]])
            else:
                estimate = 0
            request = self._admit(future, session, estimate)
            if request is not None:
                if sub["kind"] == "sql":
                    config = (ExecutionConfig(**sub["config"])
                              if sub.get("config") else None)
                    request.sql = sub["sql"]
                    request.config = config
                    effective = config or self.ctx.config
                    request.resume_checkpoint = bool(
                        effective.checkpointing)
                elif sub["kind"] == "view_read":
                    request.view_name = sub["view_name"]
                else:
                    request.table = sub["table"]
                    request.rows = [tuple(r) for r in sub["rows"]]
            self.recovered_futures[rid] = future
            self.metrics.inc("wal_readmitted")
        self._next_request_id = max(max_id + 1, self._next_request_id)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    @property
    def completed(self) -> list[QueryFuture]:
        return list(self._completed)

    def report(self) -> dict:
        """Service-wide gauges: governor, caches, views, sessions."""
        return {
            "pending": len(self._pending),
            "completed": len(self._completed),
            "governor": self.ctx.governor.report(),
            "circuit_breaker": self.breaker.report(),
            "plan_cache": self.plan_cache.report(),
            "result_cache": self.result_cache.report(),
            "views": {v.name: v.report() for v in self._views.values()},
            "sessions": {name: session.report()
                         for name, session in sorted(self._sessions.items())},
        }
