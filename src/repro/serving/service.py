"""The multi-tenant query service: many in-flight requests, one cluster.

:class:`QueryService` turns a :class:`repro.core.context.RaSQLContext`
into a served endpoint.  Clients (named :class:`~repro.serving.session.
Session` objects) *submit* work — SQL statements, reads of served
incremental views, base-table inserts — and get a :class:`QueryFuture`
back immediately; a cooperative driver later executes the backlog and
resolves the futures.

Scheduling model
----------------

Real Spark SQL servers (the Thrift server, Livy) multiplex sessions over
one SparkContext with a fair/FIFO scheduler.  Here the cluster is
*simulated* — one global clock, one metrics registry — so a preemptive
thread pool would race on shared simulated state and destroy the
bit-exact determinism every differential suite in this repo relies on.
The driver is therefore **cooperative**: requests interleave at request
granularity, and the interleaving is chosen by a seeded scheduler, so

- ``scheduler="fifo"`` replays submissions in order;
- ``scheduler="seeded"`` picks uniformly (``random.Random(seed)``) among
  the *dispatchable* requests, modeling concurrent clients racing to
  the driver — deterministically reproducible from the seed.

Admission is decoupled from execution: the governor ticket is acquired
at **submit** time (so a burst fills slots, queues FIFO, and rejects
beyond capacity exactly as :class:`repro.core.governor.QueryGovernor`
specifies), but a request only becomes dispatchable once its ticket
holds a slot (``ticket.waiting`` is ``False`` — promotions happen as
earlier requests release).  Tickets are released on *every* completion
path: success, analysis errors, deadline aborts, memory overflows.

Caching
-------

SQL statements pass through the shared :class:`~repro.serving.cache.
PlanCache` (normalized text + catalog schema epoch) and
:class:`~repro.serving.cache.ResultCache` (… + data epoch + config);
served views memoize their final SELECT between inserts.  An insert
submitted through the service appends to the session catalog (bumping
``Catalog.data_version``, which invalidates result-cache entries by
key) and fans out to every served view reading that table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.context import _query_label
from repro.core.streaming import IncrementalView
from repro.engine.serialization import rows_size
from repro.errors import AdmissionRejectedError, AnalysisError, RaSQLError
from repro.relation import Relation
from repro.serving.cache import PlanCache, ResultCache
from repro.serving.session import Session
from repro.serving.views import ServedView


@dataclass
class QueryFuture:
    """Handle to one submitted request; resolved by the driver.

    ``submitted_at`` / ``finished_at`` are simulated-clock readings, so
    :attr:`latency_s` is deterministic end-to-end simulated latency —
    admission queue charge included (the clock advances under the
    ``admission-wait`` label during submit for queued tickets).
    """

    request_id: int
    session: str
    kind: str  # "sql" | "view_read" | "insert"
    label: str
    submitted_at: float
    started_at: float | None = None
    finished_at: float | None = None
    value: object | None = None
    error: Exception | None = None
    done: bool = False
    #: Where the answer came from: "executed", "result_cache",
    #: "view_snapshot", "view_evaluated", "applied", or "rejected".
    source: str | None = None
    queued: bool = False

    def result(self):
        """The request's value; re-raises its error; refuses if pending."""
        if not self.done:
            raise RuntimeError(
                f"request #{self.request_id} ({self.label!r}) is still "
                f"pending — drain() or step() the service first")
        if self.error is not None:
            raise self.error
        return self.value

    @property
    def ok(self) -> bool:
        return self.done and self.error is None

    @property
    def latency_s(self) -> float:
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.submitted_at


@dataclass
class _Request:
    future: QueryFuture
    session: Session
    ticket: object  # AdmissionTicket
    sql: str | None = None
    config: object | None = None
    view_name: str | None = None
    table: str | None = None
    rows: list = field(default_factory=list)


class QueryService:
    """A served, cached, admission-controlled front end to one context."""

    def __init__(self, ctx, scheduler: str = "seeded", seed: int = 0,
                 service_overhead_s: float = 0.0005,
                 plan_cache_size: int = 128, result_cache_size: int = 256):
        if scheduler not in ("fifo", "seeded"):
            raise ValueError(
                f"scheduler must be 'fifo' or 'seeded', got {scheduler!r}")
        if service_overhead_s < 0:
            raise ValueError("service_overhead_s must be >= 0")
        self.ctx = ctx
        self.scheduler = scheduler
        self.seed = seed
        self.service_overhead_s = service_overhead_s
        self.metrics = ctx.metrics
        self.plan_cache = PlanCache(plan_cache_size, metrics=self.metrics)
        self.result_cache = ResultCache(result_cache_size,
                                        metrics=self.metrics)
        self._rng = random.Random(seed)
        self._sessions: dict[str, Session] = {}
        self._views: dict[str, ServedView] = {}
        self._pending: list[_Request] = []
        self._completed: list[QueryFuture] = []
        self._next_request_id = 1
        #: Execution order of completed requests (request ids), which the
        #: interleaving differential replays serially.
        self.execution_order: list[int] = []

    # ------------------------------------------------------------------
    # sessions and views
    # ------------------------------------------------------------------

    def session(self, name: str) -> Session:
        """The named session, created on first use."""
        if name not in self._sessions:
            self._sessions[name] = Session(self, name)
        return self._sessions[name]

    def create_view(self, name: str, sql: str) -> ServedView:
        """Materialize a served incremental view under ``name``.

        DDL runs synchronously (the initial fixpoint executes now), under
        a governor ticket so its memory reservation is accounted like any
        query's.
        """
        key = name.lower()
        if key in self._views:
            raise AnalysisError(f"view {name!r} is already served")
        ticket = self.ctx.governor.admit(
            f"create view {name}", self.ctx._estimate_query_bytes(sql))
        try:
            view = IncrementalView(self.ctx, sql)
        finally:
            self.ctx.governor.release(ticket)
        served = ServedView(name, view)
        self._views[key] = served
        self.metrics.inc("serving_views_created")
        return served

    def view(self, name: str) -> ServedView:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise AnalysisError(
                f"no served view {name!r} (serving: "
                f"{sorted(v.name for v in self._views.values())})") from None

    # ------------------------------------------------------------------
    # submission (tickets acquired here)
    # ------------------------------------------------------------------

    def submit(self, session: Session, sql: str, config=None) -> QueryFuture:
        """Submit a SQL statement; returns immediately with a future."""
        future = self._new_future(session, "sql", _query_label(sql))
        session.counters.inc("sql_queries")
        estimate = self.ctx._estimate_query_bytes(sql)
        request = self._admit(future, session, estimate)
        if request is not None:
            request.sql = sql
            request.config = config
        return future

    def submit_view_read(self, session: Session,
                         view_name: str) -> QueryFuture:
        """Submit a read of a served view (cheap: state is resident)."""
        served = self.view(view_name)  # raises for unknown views
        future = self._new_future(session, "view_read",
                                  f"read view {served.name}")
        session.counters.inc("view_reads")
        request = self._admit(future, session, estimated_bytes=0)
        if request is not None:
            request.view_name = served.name
        return future

    def submit_insert(self, session: Session, table: str,
                      rows: Iterable[Sequence]) -> QueryFuture:
        """Submit a base-table insert; maintains every affected view."""
        rows = [tuple(r) for r in rows]
        future = self._new_future(session, "insert",
                                  f"insert {len(rows)} rows into {table}")
        session.counters.inc("inserts")
        request = self._admit(future, session, rows_size(rows))
        if request is not None:
            request.table = table
            request.rows = rows
        return future

    def _new_future(self, session: Session, kind: str,
                    label: str) -> QueryFuture:
        future = QueryFuture(request_id=self._next_request_id,
                             session=session.name, kind=kind, label=label,
                             submitted_at=self.metrics.sim_time)
        self._next_request_id += 1
        session.counters.inc("submitted")
        self.metrics.inc("serving_requests")
        return future

    def _admit(self, future: QueryFuture, session: Session,
               estimated_bytes: int) -> _Request | None:
        """Acquire the governor ticket; on rejection fail the future now."""
        try:
            ticket = self.ctx.governor.admit(
                f"{session.name}: {future.label}", estimated_bytes)
        except AdmissionRejectedError as exc:
            session.counters.inc("rejected")
            self.metrics.inc("serving_rejected")
            self._finish(future, session, error=exc, source="rejected")
            return None
        future.queued = ticket.queued
        request = _Request(future=future, session=session, ticket=ticket)
        self._pending.append(request)
        return request

    # ------------------------------------------------------------------
    # the cooperative driver
    # ------------------------------------------------------------------

    def step(self) -> QueryFuture | None:
        """Execute one dispatchable request; ``None`` when idle.

        Only requests whose tickets hold admission slots are eligible
        (queued tickets become eligible when promotion flips them off
        ``waiting``); among those the configured scheduler picks next.
        """
        ready = [r for r in self._pending if not r.ticket.waiting]
        if not ready:
            if self._pending:
                raise RuntimeError(
                    "serving backlog is stuck: every pending ticket is "
                    "still queued (governor promotion failed to run?)")
            return None
        if self.scheduler == "fifo":
            request = ready[0]
        else:
            request = self._rng.choice(ready)
        self._pending.remove(request)
        return self._execute(request)

    def drain(self) -> list[QueryFuture]:
        """Run the backlog to empty; returns the futures in finish order."""
        finished = []
        while True:
            future = self.step()
            if future is None:
                return finished
            finished.append(future)

    # ------------------------------------------------------------------
    # execution paths (tickets released here, on every path)
    # ------------------------------------------------------------------

    def _execute(self, request: _Request) -> QueryFuture:
        future = request.future
        future.started_at = self.metrics.sim_time
        if self.service_overhead_s:
            self.metrics.advance(self.service_overhead_s,
                                 label="serving-overhead")
        self.execution_order.append(future.request_id)
        try:
            if future.kind == "sql":
                value, source = self._run_sql_request(request)
            elif future.kind == "view_read":
                value, source = self._run_view_read(request)
            else:
                value, source = self._run_insert(request)
        except RaSQLError as exc:
            self._finish(future, request.session, error=exc, source="error")
        else:
            self._finish(future, request.session, value=value, source=source)
        finally:
            # The one place tickets die: success, analysis errors,
            # deadline aborts, memory overflows all pass through here.
            self.ctx.governor.release(request.ticket)
        return future

    def _run_sql_request(self, request: _Request) -> tuple[Relation, str]:
        session, sql = request.session, request.sql
        config = request.config or self.ctx.config
        catalog = self.ctx.catalog
        result_key = self.result_cache.key(sql, catalog, config)
        found, cached = self.result_cache.lookup(result_key)
        if found:
            session.counters.inc("result_cache_hits")
            return cached, "result_cache"

        plan_key = self.plan_cache.key(sql, catalog, config)
        plan_found, analyzed = self.plan_cache.lookup(plan_key)
        if plan_found:
            session.counters.inc("plan_cache_hits")
        else:
            analyzed = self.ctx.analyze_query(sql, config)
            self.plan_cache.store(plan_key, analyzed)

        ticket = request.ticket
        admission = {"queued": ticket.queued, "wait_s": ticket.wait_s,
                     "reserved_bytes": ticket.reserved_bytes,
                     "session": session.name}
        result = self.ctx.execute_admitted(
            sql, config, label=request.future.label, analyzed=analyzed,
            admission=admission)
        self.result_cache.store(result_key, result)
        return result, "executed"

    def _run_view_read(self, request: _Request) -> tuple[Relation, str]:
        served = self.view(request.view_name)
        hits_before = served.snapshot_hits
        relation = served.read()
        self.metrics.inc("serving_view_reads")
        if served.snapshot_hits > hits_before:
            self.metrics.inc("serving_view_snapshot_hits")
            request.session.counters.inc("view_snapshot_hits")
            return relation, "view_snapshot"
        return relation, "view_evaluated"

    def _run_insert(self, request: _Request) -> tuple[int, str]:
        table, rows = request.table, request.rows
        # Catalog first: append_rows validates the schema and bumps
        # data_version, which retires every result-cache entry by key.
        appended = self.ctx.catalog.append_rows(table, rows)
        self.metrics.inc("serving_inserts")
        self.metrics.inc("serving_rows_inserted", appended)
        if appended:
            key = table.lower()
            for served in self._views.values():
                if key in served.tables:
                    served.maintain(table, rows)
        return appended, "applied"

    def _finish(self, future: QueryFuture, session: Session, value=None,
                error=None, source=None) -> None:
        future.value = value
        future.error = error
        future.source = source
        future.finished_at = self.metrics.sim_time
        future.done = True
        self._completed.append(future)
        session.counters.inc("failed" if error is not None else "completed")
        session.counters.inc("latency_s", future.latency_s)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    @property
    def completed(self) -> list[QueryFuture]:
        return list(self._completed)

    def report(self) -> dict:
        """Service-wide gauges: governor, caches, views, sessions."""
        return {
            "pending": len(self._pending),
            "completed": len(self._completed),
            "governor": self.ctx.governor.report(),
            "plan_cache": self.plan_cache.report(),
            "result_cache": self.result_cache.report(),
            "views": {v.name: v.report() for v in self._views.values()},
            "sessions": {name: session.report()
                         for name, session in sorted(self._sessions.items())},
        }
