"""Plan and result caches for the query service.

A served deployment sees the same statements over and over — dashboard
refreshes, per-tenant template queries — so the service memoizes the two
expensive halves of :meth:`repro.core.context.RaSQLContext.sql`
separately:

- :class:`PlanCache` keeps the *analyzed script* (parse → two-step
  analysis → rule-based optimization), keyed on the whitespace-normalized
  statement text, the catalog's **schema epoch**
  (:attr:`repro.core.catalog.Catalog.version` — name resolution binds to
  it), and the config knobs that change planning (``magic_filters``).
  Row inserts leave plans valid.
- :class:`ResultCache` keeps the final SELECT's relation, keyed on the
  normalized text, the catalog's **data epoch** (``data_version`` — any
  visible change invalidates), and the full execution config.  Between
  mutations, repeated reads are served without touching the cluster.

Both caches are bounded LRU (mutation-heavy workloads would otherwise
accumulate dead epochs) and count their traffic into the session
registry: ``plan_cache_hits`` / ``plan_cache_misses`` /
``result_cache_hits`` / ``result_cache_misses``.
"""

from __future__ import annotations

import re
from collections import OrderedDict

_WHITESPACE = re.compile(r"\s+")


def _segments(sql: str):
    """Split *sql* into ``(is_literal, text)`` segments.

    Literal segments are ``'...'`` strings and ``"..."`` quoted
    identifiers, with doubled quotes (``''``) as the escape, matching the
    parser's lexer.  An unterminated quote swallows the rest of the
    statement as a literal — the parser will reject it anyway, and the
    key must not mangle it into colliding with a valid statement.
    """
    i, start = 0, 0
    while i < len(sql):
        quote = sql[i]
        if quote not in ("'", '"'):
            i += 1
            continue
        if start < i:
            yield False, sql[start:i]
        end = i + 1
        while end < len(sql):
            if sql[end] == quote:
                if end + 1 < len(sql) and sql[end + 1] == quote:
                    end += 2  # doubled quote: escaped, still inside
                    continue
                end += 1
                break
            end += 1
        else:
            end = len(sql)
        yield True, sql[i:end]
        i = start = end
    if start < len(sql):
        yield False, sql[start:]


def normalize_sql(sql: str) -> str:
    """Whitespace-insensitive cache key for a statement.

    Collapses runs of whitespace and strips trailing semicolons —
    *outside string literals and quoted identifiers only*, so
    ``WHERE name = 'a  b'`` and ``WHERE name = 'a b'`` key differently
    and a trailing ``';'`` inside a literal survives.  Deliberately
    *not* case-folded: string literals are case-sensitive, and a
    lexer-level normalization is not worth the marginal extra hit rate.
    """
    parts = []
    for is_literal, text in _segments(sql):
        parts.append(text if is_literal else _WHITESPACE.sub(" ", text))
    # Strip trailing statement terminators (and the whitespace around
    # them), walking only over non-literal tail segments.
    while parts:
        tail = parts[-1]
        if tail.startswith(("'", '"')):
            break  # literal segment: its content is part of the key
        stripped = tail.rstrip("; \t\r\n")
        if stripped:
            parts[-1] = stripped
            break
        parts.pop()
    return "".join(parts).strip()


class _LRUCache:
    """Bounded OrderedDict-backed LRU with hit/miss counters."""

    def __init__(self, capacity: int, metrics=None, hit_counter: str = "",
                 miss_counter: str = ""):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.metrics = metrics
        self.hit_counter = hit_counter
        self.miss_counter = miss_counter
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key):
        """Return ``(found, value)`` and count the hit or miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            if self.metrics is not None and self.hit_counter:
                self.metrics.inc(self.hit_counter)
            return True, self._entries[key]
        self.misses += 1
        if self.metrics is not None and self.miss_counter:
            self.metrics.inc(self.miss_counter)
        return False, None

    def store(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def report(self) -> dict:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 4)}


class PlanCache(_LRUCache):
    """Analyzed-script cache: survives row inserts, dies on schema change."""

    def __init__(self, capacity: int = 128, metrics=None):
        super().__init__(capacity, metrics, "plan_cache_hits",
                         "plan_cache_misses")

    def key(self, sql: str, catalog, config) -> tuple:
        return (normalize_sql(sql), catalog.version, config.magic_filters)


class ResultCache(_LRUCache):
    """Final-relation cache: any catalog mutation invalidates via the key.

    The config enters the key through its ``repr`` — the frozen dataclass
    renders every knob, and two configs answer identically exactly when
    all knobs match (kernels on/off etc. are bit-exact by contract, but
    e.g. ``max_iterations`` is not).
    """

    def __init__(self, capacity: int = 256, metrics=None):
        super().__init__(capacity, metrics, "result_cache_hits",
                         "result_cache_misses")

    def key(self, sql: str, catalog, config) -> tuple:
        return (normalize_sql(sql), catalog.version, catalog.data_version,
                repr(config))
