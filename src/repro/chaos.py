"""Chaos-test harness: seeded fault schedules, verified against a clean run.

Section 6.1 claims the cached all-relation partitions make recovery cheap
*and* exact: a failure only replays the current stage, and the replayed
stage recomputes the same deltas.  This module turns that claim into a
repeatable experiment:

1. :func:`make_schedule` derives a deterministic fault schedule (task
   deaths + worker losses, random stages/tasks/points) from a seed.
2. :func:`run_with_chaos` runs a query twice on fresh clusters — once
   clean, once under the schedule — and reports whether the results are
   bit-exact, what the recovery counters recorded, and how much simulated
   time the faults cost.

Everything is seeded, so a failing ``(query, seed)`` pair reproduces
exactly.  The CLI exposes the harness as ``python -m repro --chaos SEED``
and the lower-level ``--faults SPEC`` (see :func:`parse_fault_spec`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.engine.faults import (
    FailureInjector,
    MemoryPressureInjector,
    WorkerLossInjector,
)

__all__ = [
    "ChaosReport",
    "ChaosSchedule",
    "make_schedule",
    "parse_fault_spec",
    "run_with_chaos",
]

_FAILURE_POINTS = ("before", "after")


@dataclass
class ChaosSchedule:
    """A reproducible set of fault injectors derived from one seed."""

    seed: int
    injectors: list = field(default_factory=list)

    def arm(self, cluster) -> None:
        """Install every injector on a cluster."""
        for injector in self.injectors:
            cluster.inject_failures(injector)

    @property
    def task_injectors(self) -> list[FailureInjector]:
        return [i for i in self.injectors if isinstance(i, FailureInjector)]

    @property
    def loss_injectors(self) -> list[WorkerLossInjector]:
        return [i for i in self.injectors if isinstance(i, WorkerLossInjector)]

    @property
    def pressure_injectors(self) -> list[MemoryPressureInjector]:
        return [i for i in self.injectors
                if isinstance(i, MemoryPressureInjector)]

    def injected_counts(self) -> tuple[int, int]:
        """(task failures fired, worker losses fired) after a run."""
        return (sum(i.injected for i in self.task_injectors),
                sum(i.injected for i in self.loss_injectors))

    def describe(self) -> str:
        parts = []
        for i in self.task_injectors:
            parts.append(f"task-death[{i.stage_pattern} task={i.task_index} "
                         f"point={i.point} times={i.times}]")
        for i in self.loss_injectors:
            victim = "auto" if i.worker is None else i.worker
            parts.append(f"worker-loss[{i.stage_pattern} worker={victim} "
                         f"at_task={i.at_task} skip={i.skip_matches}]")
        for i in self.pressure_injectors:
            parts.append(f"memory-pressure[{i.stage_pattern} "
                         f"fraction={i.fraction:.2f} skip={i.skip_matches}]")
        return f"seed={self.seed}: " + ("; ".join(parts) or "no faults")


def make_schedule(seed: int, num_workers: int = 4,
                  num_partitions: int | None = None,
                  task_deaths: int = 2, worker_losses: int = 1,
                  memory_pressure: int = 1,
                  stage_pattern: str = "fixpoint") -> ChaosSchedule:
    """Derive a deterministic fault schedule from a seed.

    Task deaths pick a random partition/point per injector; worker losses
    pick a random strike position and skip a random number of matching
    stages first, so across seeds the faults land in different fixpoint
    iterations — early, mid-merge, and near convergence.  Memory-pressure
    injectors shrink the per-worker budget to a random fraction of peak
    usage mid-run (soft enforcement: spills, never aborts), exercising
    the spill tier alongside the crash faults.
    """
    rng = random.Random(seed)
    n = num_partitions or num_workers
    injectors: list = []
    for _ in range(task_deaths):
        injectors.append(FailureInjector(
            stage_pattern,
            task_index=rng.randrange(n),
            times=1,
            point=rng.choice(_FAILURE_POINTS)))
    for _ in range(worker_losses):
        injectors.append(WorkerLossInjector(
            stage_pattern,
            worker=None,
            at_task=rng.randrange(n),
            skip_matches=rng.randrange(3),
            times=1))
    for _ in range(memory_pressure):
        injectors.append(MemoryPressureInjector(
            stage_pattern,
            fraction=rng.uniform(0.3, 0.7),
            skip_matches=rng.randrange(3),
            times=1))
    return ChaosSchedule(seed=seed, injectors=injectors)


def parse_fault_spec(spec: str):
    """Parse a CLI ``--faults`` spec into an injector.

    Grammar (colon-separated)::

        task:PATTERN[:key=value ...]            -> FailureInjector
        worker-loss:PATTERN[:key=value ...]     -> WorkerLossInjector
        memory-pressure:PATTERN[:key=value ...] -> MemoryPressureInjector

    Examples::

        task:fixpoint:task_index=1:point=after:times=2
        task:fixpoint-map:task_index=any:persistent=true
        worker-loss:fixpoint:worker=2:at_task=1:skip_matches=3
        memory-pressure:fixpoint:fraction=0.4:skip_matches=1

    ``task_index=any`` targets every task of a matching stage.
    """
    parts = spec.split(":")
    if len(parts) < 2:
        raise ValueError(
            f"bad fault spec {spec!r}: expected 'task:PATTERN[...]' or "
            "'worker-loss:PATTERN[...]'")
    kind, pattern, *options = parts
    kwargs: dict = {}
    for option in options:
        key, sep, value = option.partition("=")
        if not sep:
            raise ValueError(f"bad fault option {option!r} in {spec!r} "
                             "(expected key=value)")
        if key in ("point",):
            kwargs[key] = value
        elif key in ("persistent",):
            kwargs[key] = value.lower() in ("1", "true", "yes")
        elif key == "task_index" and value.lower() in ("any", "none", "*"):
            kwargs[key] = None
        elif key == "worker" and value.lower() in ("auto", "none", "*"):
            kwargs[key] = None
        elif key == "fraction":
            try:
                kwargs[key] = float(value)
            except ValueError:
                raise ValueError(
                    f"bad fault option {option!r} in {spec!r}") from None
        else:
            try:
                kwargs[key] = int(value)
            except ValueError:
                raise ValueError(
                    f"bad fault option {option!r} in {spec!r}") from None
    if kind == "task":
        return FailureInjector(pattern, **kwargs)
    if kind == "worker-loss":
        return WorkerLossInjector(pattern, **kwargs)
    if kind == "memory-pressure":
        return MemoryPressureInjector(pattern, **kwargs)
    raise ValueError(f"unknown fault kind {kind!r} in {spec!r} "
                     "(expected 'task', 'worker-loss', or "
                     "'memory-pressure')")


def _sorted_rows(rows: Sequence[tuple]) -> list[tuple]:
    # repr-keyed sort tolerates mixed-type columns (ints vs strings).
    return sorted(rows, key=repr)


@dataclass
class ChaosReport:
    """Outcome of one clean-vs-chaos comparison run."""

    schedule: ChaosSchedule
    matches: bool
    baseline_rows: int
    chaos_rows: int
    baseline_sim_time: float
    chaos_sim_time: float
    #: Recovery counters of the chaos run (``RunInfo.fault_summary``).
    counters: dict[str, float]
    #: The chaos run's span tree, for EXPLAIN ANALYZE rendering.
    trace: dict | None = None

    @property
    def overhead_seconds(self) -> float:
        return self.chaos_sim_time - self.baseline_sim_time

    @property
    def failures_injected(self) -> int:
        task_fired, loss_fired = self.schedule.injected_counts()
        return task_fired + loss_fired

    def summary(self) -> str:
        verdict = "EXACT" if self.matches else "MISMATCH"
        return (
            f"chaos[{self.schedule.describe()}] -> {verdict}: "
            f"{self.chaos_rows} rows (clean {self.baseline_rows}); "
            f"sim {self.baseline_sim_time:.4f}s -> {self.chaos_sim_time:.4f}s "
            f"(+{self.overhead_seconds:.4f}s recovery); "
            f"failures={self.counters.get('task_failures', 0):.0f} "
            f"lost={self.counters.get('workers_lost', 0):.0f} "
            f"attempts={self.counters.get('task_attempts', 0):.0f}")


def run_with_chaos(query: str, make_context: Callable[[], "object"],
                   schedule: ChaosSchedule) -> ChaosReport:
    """Run a query clean and under a fault schedule; compare bit-exactly.

    ``make_context`` must return a *fresh* :class:`repro.RaSQLContext`
    (tables registered, deterministic data) on every call — the two runs
    must not share cluster state, or the comparison is meaningless.
    """
    baseline_ctx = make_context()
    baseline = baseline_ctx.sql(query)
    baseline_time = baseline_ctx.last_run.sim_time

    chaos_ctx = make_context()
    schedule.arm(chaos_ctx.cluster)
    chaotic = chaos_ctx.sql(query)
    run = chaos_ctx.last_run

    return ChaosReport(
        schedule=schedule,
        matches=_sorted_rows(baseline.rows) == _sorted_rows(chaotic.rows),
        baseline_rows=len(baseline.rows),
        chaos_rows=len(chaotic.rows),
        baseline_sim_time=baseline_time,
        chaos_sim_time=run.sim_time,
        counters=run.fault_summary(),
        trace=run.trace,
    )
