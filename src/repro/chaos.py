"""Chaos-test harness: seeded fault schedules, verified against a clean run.

Section 6.1 claims the cached all-relation partitions make recovery cheap
*and* exact: a failure only replays the current stage, and the replayed
stage recomputes the same deltas.  This module turns that claim into a
repeatable experiment:

1. :func:`make_schedule` derives a deterministic fault schedule (task
   deaths + worker losses, random stages/tasks/points) from a seed.
2. :func:`run_with_chaos` runs a query twice on fresh clusters — once
   clean, once under the schedule — and reports whether the results are
   bit-exact, what the recovery counters recorded, and how much simulated
   time the faults cost.

Everything is seeded, so a failing ``(query, seed)`` pair reproduces
exactly.  The CLI exposes the harness as ``python -m repro --chaos SEED``
and the lower-level ``--faults SPEC`` (see :func:`parse_fault_spec`).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.checkpoint import make_query_id
from repro.engine.faults import (
    CorruptionInjector,
    DriverKillInjector,
    FailureInjector,
    MemoryPressureInjector,
    ProcessKillInjector,
    WorkerLossInjector,
)
from repro.errors import DriverCrashError

__all__ = [
    "ChaosReport",
    "ChaosSchedule",
    "KillResumeReport",
    "RealKillReport",
    "ServiceChaosReport",
    "ServiceOp",
    "make_real_kill_schedule",
    "make_schedule",
    "make_service_schedule",
    "parse_fault_spec",
    "run_service_with_chaos",
    "run_with_chaos",
    "run_with_kill_resume",
    "run_with_real_kills",
]

_FAILURE_POINTS = ("before", "after")


@dataclass
class ChaosSchedule:
    """A reproducible set of fault injectors derived from one seed."""

    seed: int
    injectors: list = field(default_factory=list)

    def arm(self, cluster) -> None:
        """Install every injector on a cluster."""
        for injector in self.injectors:
            cluster.inject_failures(injector)

    @property
    def task_injectors(self) -> list[FailureInjector]:
        return [i for i in self.injectors if isinstance(i, FailureInjector)]

    @property
    def loss_injectors(self) -> list[WorkerLossInjector]:
        return [i for i in self.injectors if isinstance(i, WorkerLossInjector)]

    @property
    def pressure_injectors(self) -> list[MemoryPressureInjector]:
        return [i for i in self.injectors
                if isinstance(i, MemoryPressureInjector)]

    def injected_counts(self) -> tuple[int, int]:
        """(task failures fired, worker losses fired) after a run."""
        return (sum(i.injected for i in self.task_injectors),
                sum(i.injected for i in self.loss_injectors))

    def describe(self) -> str:
        parts = []
        for i in self.task_injectors:
            parts.append(f"task-death[{i.stage_pattern} task={i.task_index} "
                         f"point={i.point} times={i.times}]")
        for i in self.loss_injectors:
            victim = "auto" if i.worker is None else i.worker
            parts.append(f"worker-loss[{i.stage_pattern} worker={victim} "
                         f"at_task={i.at_task} skip={i.skip_matches}]")
        for i in self.pressure_injectors:
            parts.append(f"memory-pressure[{i.stage_pattern} "
                         f"fraction={i.fraction:.2f} skip={i.skip_matches}]")
        return f"seed={self.seed}: " + ("; ".join(parts) or "no faults")


def make_schedule(seed: int, num_workers: int = 4,
                  num_partitions: int | None = None,
                  task_deaths: int = 2, worker_losses: int = 1,
                  memory_pressure: int = 1,
                  stage_pattern: str = "fixpoint") -> ChaosSchedule:
    """Derive a deterministic fault schedule from a seed.

    Task deaths pick a random partition/point per injector; worker losses
    pick a random strike position and skip a random number of matching
    stages first, so across seeds the faults land in different fixpoint
    iterations — early, mid-merge, and near convergence.  Memory-pressure
    injectors shrink the per-worker budget to a random fraction of peak
    usage mid-run (soft enforcement: spills, never aborts), exercising
    the spill tier alongside the crash faults.
    """
    rng = random.Random(seed)
    n = num_partitions or num_workers
    injectors: list = []
    for _ in range(task_deaths):
        injectors.append(FailureInjector(
            stage_pattern,
            task_index=rng.randrange(n),
            times=1,
            point=rng.choice(_FAILURE_POINTS)))
    for _ in range(worker_losses):
        injectors.append(WorkerLossInjector(
            stage_pattern,
            worker=None,
            at_task=rng.randrange(n),
            skip_matches=rng.randrange(3),
            times=1))
    for _ in range(memory_pressure):
        injectors.append(MemoryPressureInjector(
            stage_pattern,
            fraction=rng.uniform(0.3, 0.7),
            skip_matches=rng.randrange(3),
            times=1))
    return ChaosSchedule(seed=seed, injectors=injectors)


def parse_fault_spec(spec: str):
    """Parse a CLI ``--faults`` spec into an injector.

    Grammar (colon-separated)::

        task:PATTERN[:key=value ...]            -> FailureInjector
        worker-loss:PATTERN[:key=value ...]     -> WorkerLossInjector
        memory-pressure:PATTERN[:key=value ...] -> MemoryPressureInjector

    Examples::

        task:fixpoint:task_index=1:point=after:times=2
        task:fixpoint-map:task_index=any:persistent=true
        worker-loss:fixpoint:worker=2:at_task=1:skip_matches=3
        memory-pressure:fixpoint:fraction=0.4:skip_matches=1

    Two durability-layer kinds ride the same grammar::

        driver-kill:PATTERN[:key=value ...]     -> DriverKillInjector
        corruption[:key=value ...]              -> CorruptionInjector

    And one process-backend kind (real signals against pool workers)::

        process-kill:PATTERN[:key=value ...]    -> ProcessKillInjector

    e.g. ``process-kill:fixpoint:signal=stop:skip_matches=2``.

    ``corruption`` takes no stage pattern (it strikes exchanges, counted
    by ``skip_matches``): ``corruption:skip_matches=2:seed=7``.

    ``task_index=any`` targets every task of a matching stage.
    """
    parts = spec.split(":")
    if parts and parts[0] == "corruption":
        # Pattern-less grammar: every remaining part is an option.
        parts = ["corruption", ""] + parts[1:]
    if len(parts) < 2:
        raise ValueError(
            f"bad fault spec {spec!r}: expected 'task:PATTERN[...]' or "
            "'worker-loss:PATTERN[...]'")
    kind, pattern, *options = parts
    kwargs: dict = {}
    for option in options:
        key, sep, value = option.partition("=")
        if not sep:
            raise ValueError(f"bad fault option {option!r} in {spec!r} "
                             "(expected key=value)")
        if key in ("point", "signal"):
            kwargs[key] = value
        elif key in ("persistent",):
            kwargs[key] = value.lower() in ("1", "true", "yes")
        elif key == "task_index" and value.lower() in ("any", "none", "*"):
            kwargs[key] = None
        elif key == "worker" and value.lower() in ("auto", "none", "*"):
            kwargs[key] = None
        elif key == "fraction":
            try:
                kwargs[key] = float(value)
            except ValueError:
                raise ValueError(
                    f"bad fault option {option!r} in {spec!r}") from None
        else:
            try:
                kwargs[key] = int(value)
            except ValueError:
                raise ValueError(
                    f"bad fault option {option!r} in {spec!r}") from None
    if kind == "task":
        return FailureInjector(pattern, **kwargs)
    if kind == "worker-loss":
        return WorkerLossInjector(pattern, **kwargs)
    if kind == "memory-pressure":
        return MemoryPressureInjector(pattern, **kwargs)
    if kind == "driver-kill":
        return DriverKillInjector(pattern, **kwargs)
    if kind == "process-kill":
        return ProcessKillInjector(pattern, **kwargs)
    if kind == "corruption":
        return CorruptionInjector(**kwargs)
    raise ValueError(f"unknown fault kind {kind!r} in {spec!r} "
                     "(expected 'task', 'worker-loss', "
                     "'memory-pressure', 'driver-kill', 'process-kill', "
                     "or 'corruption')")


def _sorted_rows(rows: Sequence[tuple]) -> list[tuple]:
    # repr-keyed sort tolerates mixed-type columns (ints vs strings).
    return sorted(rows, key=repr)


@dataclass
class ChaosReport:
    """Outcome of one clean-vs-chaos comparison run."""

    schedule: ChaosSchedule
    matches: bool
    baseline_rows: int
    chaos_rows: int
    baseline_sim_time: float
    chaos_sim_time: float
    #: Recovery counters of the chaos run (``RunInfo.fault_summary``).
    counters: dict[str, float]
    #: The chaos run's span tree, for EXPLAIN ANALYZE rendering.
    trace: dict | None = None

    @property
    def overhead_seconds(self) -> float:
        return self.chaos_sim_time - self.baseline_sim_time

    @property
    def failures_injected(self) -> int:
        task_fired, loss_fired = self.schedule.injected_counts()
        return task_fired + loss_fired

    def summary(self) -> str:
        verdict = "EXACT" if self.matches else "MISMATCH"
        return (
            f"chaos[{self.schedule.describe()}] -> {verdict}: "
            f"{self.chaos_rows} rows (clean {self.baseline_rows}); "
            f"sim {self.baseline_sim_time:.4f}s -> {self.chaos_sim_time:.4f}s "
            f"(+{self.overhead_seconds:.4f}s recovery); "
            f"failures={self.counters.get('task_failures', 0):.0f} "
            f"lost={self.counters.get('workers_lost', 0):.0f} "
            f"attempts={self.counters.get('task_attempts', 0):.0f}")


def run_with_chaos(query: str, make_context: Callable[[], "object"],
                   schedule: ChaosSchedule) -> ChaosReport:
    """Run a query clean and under a fault schedule; compare bit-exactly.

    ``make_context`` must return a *fresh* :class:`repro.RaSQLContext`
    (tables registered, deterministic data) on every call — the two runs
    must not share cluster state, or the comparison is meaningless.
    """
    baseline_ctx = make_context()
    baseline = baseline_ctx.sql(query)
    baseline_time = baseline_ctx.last_run.sim_time

    chaos_ctx = make_context()
    schedule.arm(chaos_ctx.cluster)
    chaotic = chaos_ctx.sql(query)
    run = chaos_ctx.last_run

    return ChaosReport(
        schedule=schedule,
        matches=_sorted_rows(baseline.rows) == _sorted_rows(chaotic.rows),
        baseline_rows=len(baseline.rows),
        chaos_rows=len(chaotic.rows),
        baseline_sim_time=baseline_time,
        chaos_sim_time=run.sim_time,
        counters=run.fault_summary(),
        trace=run.trace,
    )


# ----------------------------------------------------------------------
# process-backend chaos: real signals against real worker processes
# ----------------------------------------------------------------------


@dataclass
class RealKillReport:
    """Outcome of one clean-simulated-vs-killed-process differential.

    The baseline is the *simulated* backend (the deterministic oracle);
    the chaos run executes on real worker processes while injectors
    SIGKILL/SIGSTOP them mid-query.  Exactness asks for identical result
    rows, identical iteration counts, and an identical convergence
    verdict — recovery must not change what the query computes.
    """

    seed: int
    matches: bool
    iterations_match: bool
    converged_match: bool
    baseline_rows: int
    chaos_rows: int
    baseline_iterations: int
    chaos_iterations: int
    kills_fired: int
    #: Supervision counters of the chaos run
    #: (``RunInfo.supervision_summary``).
    counters: dict[str, float] = field(default_factory=dict)
    trace: dict | None = None

    @property
    def exact(self) -> bool:
        return self.matches and self.iterations_match and self.converged_match

    def summary(self) -> str:
        verdict = "EXACT" if self.exact else "MISMATCH"
        return (
            f"real-kills[seed={self.seed} fired={self.kills_fired}] -> "
            f"{verdict}: {self.chaos_rows} rows (clean "
            f"{self.baseline_rows}), iter {self.chaos_iterations} (clean "
            f"{self.baseline_iterations}); "
            f"crashes={self.counters.get('process_worker_crashes', 0):.0f} "
            f"reaps={self.counters.get('process_worker_reaps', 0):.0f} "
            f"respawns={self.counters.get('process_worker_respawns', 0):.0f}")


def make_real_kill_schedule(seed: int, kills: int = 1,
                            stage_pattern: str = "fixpoint"
                            ) -> list[ProcessKillInjector]:
    """Seeded :class:`ProcessKillInjector` list: random signal (SIGKILL
    or SIGSTOP) and a random number of matching stages skipped first, so
    across seeds the strikes land in different fixpoint iterations."""
    rng = random.Random(seed)
    return [ProcessKillInjector(stage_pattern,
                                signal=rng.choice(("kill", "stop")),
                                skip_matches=rng.randrange(4),
                                times=1)
            for _ in range(kills)]


def run_with_real_kills(query: str, make_context: Callable[[], "object"],
                        injectors: Sequence[ProcessKillInjector],
                        seed: int = 0) -> RealKillReport:
    """Run a query on the simulated oracle and on the process backend
    under real signal injection; compare bit-exactly.

    ``make_context`` must accept a ``backend`` keyword and return a
    fresh :class:`repro.RaSQLContext` on that backend with identical
    deterministic tables each call.  The process context is closed
    (pool torn down) before returning.
    """
    baseline_ctx = make_context(backend="simulated")
    baseline = baseline_ctx.sql(query)
    baseline_run = baseline_ctx.last_run

    chaos_ctx = make_context(backend="process")
    for injector in injectors:
        chaos_ctx.cluster.inject_failures(injector)
    try:
        chaotic = chaos_ctx.sql(query)
        run = chaos_ctx.last_run
    finally:
        chaos_ctx.close()

    return RealKillReport(
        seed=seed,
        matches=_sorted_rows(baseline.rows) == _sorted_rows(chaotic.rows),
        iterations_match=baseline_run.iterations == run.iterations,
        converged_match=_converged(baseline_run) == _converged(run),
        baseline_rows=len(baseline.rows),
        chaos_rows=len(chaotic.rows),
        baseline_iterations=baseline_run.iterations,
        chaos_iterations=run.iterations,
        kills_fired=sum(i.injected for i in injectors),
        counters=run.supervision_summary(),
        trace=run.trace,
    )


# ----------------------------------------------------------------------
# durability chaos: driver kills against checkpoints and the WAL
# ----------------------------------------------------------------------


@dataclass
class KillResumeReport:
    """Outcome of one clean-vs-(kill+resume) differential."""

    seed: int
    #: Whether the injected driver kill actually fired (a skip count past
    #: the end of the run means the query simply completed — the
    #: comparison is then clean-vs-clean and must still match).
    killed: bool
    matches: bool
    iterations_match: bool
    converged_match: bool
    clean_rows: int
    resumed_rows: int
    clean_iterations: int
    resumed_iterations: int
    #: The checkpointed iteration the resumed run continued from
    #: (0 = crashed before the first checkpoint, resumed from scratch).
    resumed_from: int

    @property
    def exact(self) -> bool:
        return self.matches and self.iterations_match and self.converged_match

    def summary(self) -> str:
        verdict = "EXACT" if self.exact else "MISMATCH"
        return (f"kill-resume[seed={self.seed} killed={self.killed} "
                f"from_iter={self.resumed_from}] -> {verdict}: "
                f"{self.resumed_rows} rows (clean {self.clean_rows}), "
                f"iter {self.resumed_iterations} (clean "
                f"{self.clean_iterations})")


def _converged(run) -> bool:
    """Did every clique's delta history drain to zero?"""
    return all(history[-1] == 0
               for history in run.delta_history.values() if history)


def run_with_kill_resume(query: str, make_context: Callable[[], "object"],
                         checkpoint_dir: str, seed: int = 0,
                         checkpoint_interval: int | None = None
                         ) -> KillResumeReport:
    """Kill a checkpointed query mid-fixpoint, resume it, diff vs clean.

    Three fresh contexts (``make_context`` must rebuild identical
    deterministic state each call):

    1. **clean** — the full uninterrupted run, checkpointing on (same
       config as the victim, so plan choices are identical), writing
       into a sibling directory;
    2. **victim** — same config, with a :class:`DriverKillInjector`
       whose strike position is drawn from ``seed`` using the clean
       run's iteration count, so across seeds the kill lands early,
       mid-run, and near convergence;
    3. **resume** — a restarted driver continuing the victim via
       :meth:`repro.RaSQLContext.resume`.

    Exactness asks for identical result rows, identical total iteration
    count, and an identical convergence verdict.
    """
    from repro.core.config import DEFAULT_CHECKPOINT_INTERVAL

    interval = checkpoint_interval or DEFAULT_CHECKPOINT_INTERVAL
    clean_ctx = make_context()
    clean_cfg = clean_ctx.config.but(
        checkpoint_interval=interval,
        checkpoint_dir=os.path.join(checkpoint_dir, "clean"))
    clean = clean_ctx.sql(query, config=clean_cfg)
    clean_run = clean_ctx.last_run

    rng = random.Random(seed)
    # At least one matching stage per iteration; capping the skip by the
    # iteration count keeps most seeds lethal while letting some overrun
    # (exercising the query-completed-anyway path).
    skip = rng.randrange(max(1, clean_run.iterations + 2))
    chaos_dir = os.path.join(checkpoint_dir, "chaos")
    victim_ctx = make_context()
    victim_cfg = victim_ctx.config.but(checkpoint_interval=interval,
                                       checkpoint_dir=chaos_dir)
    victim_ctx.inject_faults(DriverKillInjector("fixpoint",
                                                skip_matches=skip))
    killed = False
    try:
        resumed = victim_ctx.sql(query, config=victim_cfg)
        final_run = victim_ctx.last_run
    except DriverCrashError:
        killed = True
        resume_ctx = make_context()
        resumed = resume_ctx.resume(make_query_id(query),
                                    checkpoint_dir=chaos_dir)
        final_run = resume_ctx.last_run

    return KillResumeReport(
        seed=seed,
        killed=killed,
        matches=_sorted_rows(clean.rows) == _sorted_rows(resumed.rows),
        iterations_match=clean_run.iterations == final_run.iterations,
        converged_match=_converged(clean_run) == _converged(final_run),
        clean_rows=len(clean.rows),
        resumed_rows=len(resumed.rows),
        clean_iterations=clean_run.iterations,
        resumed_iterations=final_run.iterations,
        resumed_from=final_run.resumed_from,
    )


# ----------------------------------------------------------------------
# serving-layer chaos: kill a live service, recover it, diff vs serial
# ----------------------------------------------------------------------


@dataclass
class ServiceOp:
    """One client operation in a service chaos schedule."""

    kind: str  # "sql" | "view_read" | "insert"
    session: str
    sql: str | None = None
    view_name: str | None = None
    table: str | None = None
    rows: list = field(default_factory=list)


def make_service_schedule(seed: int, queries: Sequence[str],
                          view_name: str, insert_table: str,
                          insert_rows: Sequence[Sequence],
                          num_ops: int = 10) -> list[ServiceOp]:
    """A seeded mixed op stream: SQL, served-view reads, inserts.

    Insert rows are dealt from ``insert_rows`` round-robin (each row
    submitted at most once, so replays of the schedule are idempotent at
    the catalog level); sessions alternate between two tenants.
    """
    rng = random.Random(seed)
    ops: list[ServiceOp] = []
    deck = list(insert_rows)
    for index in range(num_ops):
        session = ("alice", "bob")[index % 2]
        kind = rng.choice(("sql", "view_read", "insert"))
        if kind == "insert" and not deck:
            kind = "view_read"
        if kind == "sql":
            ops.append(ServiceOp("sql", session, sql=rng.choice(list(queries))))
        elif kind == "view_read":
            ops.append(ServiceOp("view_read", session, view_name=view_name))
        else:
            ops.append(ServiceOp("insert", session, table=insert_table,
                                 rows=[tuple(deck.pop(0))]))
    return ops


@dataclass
class ServiceChaosReport:
    """Outcome of one killed-service-vs-serial-replay differential."""

    seed: int
    killed: bool
    matches: bool
    mismatched_requests: list = field(default_factory=list)
    completed_before_crash: int = 0
    readmitted: int = 0
    compared: int = 0
    corruption_detected: int = 0
    execution_order: list = field(default_factory=list)

    def summary(self) -> str:
        verdict = "EXACT" if self.matches else "MISMATCH"
        return (f"service-chaos[seed={self.seed} killed={self.killed}] -> "
                f"{verdict}: {self.compared} post-recovery results compared "
                f"(pre-crash {self.completed_before_crash}, re-admitted "
                f"{self.readmitted}, corruption detected "
                f"{self.corruption_detected})")


def _submit_op(service, op: ServiceOp, sql_config):
    session = service.session(op.session)
    if op.kind == "sql":
        return service.submit(session, op.sql, config=sql_config)
    if op.kind == "view_read":
        return service.submit_view_read(session, op.view_name)
    return service.submit_insert(session, op.table, op.rows)


def run_service_with_chaos(make_context: Callable[[], "object"],
                           ops: Sequence[ServiceOp], *,
                           view_name: str, view_sql: str,
                           wal_path: str, checkpoint_dir: str,
                           seed: int = 0,
                           kill_after_requests: int = 2,
                           corruptions: int = 0) -> ServiceChaosReport:
    """Kill a live :class:`repro.serving.QueryService` under load; verify.

    Phase 1 boots a WAL-logged service, creates the served view, submits
    the whole op stream up front (op *i* is request id ``i + 1``), steps
    ``kill_after_requests`` requests, then arms a seeded
    :class:`DriverKillInjector` and drains until the driver dies (or the
    backlog ends — some seeds survive; the differential must still
    match).  Phase 2 recovers a fresh service from the WAL on a
    bootstrap-state context and drains the re-admitted backlog.  Phase 3
    replays the recovered service's ``execution_order`` serially —
    one op at a time on a fresh context, no service, no caches, no
    checkpoints — and diffs every post-recovery result against it.
    """
    from repro.serving import QueryService

    ctx = make_context()
    service = QueryService(ctx, scheduler="seeded", seed=seed,
                           wal_path=wal_path)
    service.create_view(view_name, view_sql)
    rng = random.Random(seed)
    sql_config = ctx.config.but(
        checkpoint_interval=3, checkpoint_dir=checkpoint_dir)
    for op in ops:
        _submit_op(service, op, sql_config)
    for index in range(corruptions):
        ctx.cluster.inject_failures(CorruptionInjector(
            skip_matches=rng.randrange(4), seed=seed * 31 + index))

    killed = False
    completed_before_crash = 0
    try:
        for _ in range(kill_after_requests):
            if service.step() is None:
                break
            completed_before_crash += 1
        # Arm the kill only now: the view DDL and warm-up requests run
        # unharmed, so the crash lands mid-backlog.
        ctx.inject_faults(DriverKillInjector("fixpoint",
                                             skip_matches=rng.randrange(6)))
        while service.step() is not None:
            completed_before_crash += 1
    except DriverCrashError:
        killed = True

    # -- restart: bootstrap-state context, WAL replay, drain ------------
    recovered_ctx = make_context()
    recovered = QueryService.recover(recovered_ctx, wal_path)
    recovered.drain()
    by_id = {future.request_id: future for future in recovered.completed}

    # -- serial replay of the recovered execution order ------------------
    serial_ctx = make_context()
    serial_cfg = serial_ctx.config  # no checkpoints, no caches, no service
    mismatched: list = []
    compared = 0
    for request_id in recovered.execution_order:
        op = ops[request_id - 1]
        if op.kind == "insert":
            serial_ctx.catalog.append_rows(op.table, op.rows)
            expected: object = len(op.rows)
        elif op.kind == "sql":
            expected = serial_ctx.sql(op.sql, config=serial_cfg)
        else:
            expected = serial_ctx.sql(view_sql, config=serial_cfg)
        future = by_id.get(request_id)
        if future is None or not future.ok:
            continue  # pre-crash completion: result died with the driver
        compared += 1
        actual = future.value
        if op.kind == "insert":
            same = actual == expected
        else:
            same = (_sorted_rows(actual.rows)
                    == _sorted_rows(expected.rows))
        if not same:
            mismatched.append(request_id)

    detected = recovered_ctx.metrics.snapshot().get(
        "shuffle_corruption_detected", 0)
    detected += ctx.metrics.snapshot().get("shuffle_corruption_detected", 0)
    return ServiceChaosReport(
        seed=seed,
        killed=killed,
        matches=not mismatched,
        mismatched_requests=mismatched,
        completed_before_crash=completed_before_crash,
        readmitted=len(recovered.recovered_futures),
        compared=compared,
        corruption_detected=int(detected),
        execution_order=list(recovered.execution_order),
    )
