"""Loading base tables from files.

Supports the two formats the paper's workloads come in:

- *edge lists* — whitespace- or tab-separated numeric columns, ``#``
  comments (the SNAP/WebGraph distribution format of Table 1's graphs);
- *CSV with header* — for business-shaped tables (sales, shares, ...).

Values are type-inferred per field: int, then float, else string.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Sequence

from repro.relation import Relation


def _convert(text: str):
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def read_edge_list(path: str | pathlib.Path, columns: Sequence[str] | None = None,
                   name: str = "edge") -> Relation:
    """Read a whitespace-separated edge list with ``#`` comments.

    Column names default to ``Src, Dst`` plus ``Cost`` when a third field
    is present (further fields get ``_c3``, ``_c4``...).
    """
    rows: list[tuple] = []
    arity = None
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            fields = tuple(_convert(f) for f in line.split())
            if arity is None:
                arity = len(fields)
            elif len(fields) != arity:
                raise ValueError(
                    f"ragged edge list: expected {arity} fields, got "
                    f"{len(fields)} in {line!r}")
            rows.append(fields)
    if arity is None:
        arity = 2
    if columns is None:
        defaults = ["Src", "Dst", "Cost"]
        columns = (defaults[:arity] if arity <= 3 else
                   defaults + [f"_c{i}" for i in range(3, arity)])
    return Relation(name, columns, rows)


def read_csv(path: str | pathlib.Path, name: str | None = None) -> Relation:
    """Read a CSV whose first row is the header."""
    path = pathlib.Path(path)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        rows = [tuple(_convert(field) for field in record)
                for record in reader if record]
    return Relation(name or path.stem, [h.strip() for h in header], rows)


def write_csv(relation: Relation, path: str | pathlib.Path) -> None:
    """Write a relation as CSV with a header row."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.columns)
        writer.writerows(relation.rows)


def load_table(path: str | pathlib.Path, name: str | None = None) -> Relation:
    """Dispatch on extension: ``.csv`` → CSV, everything else → edge list."""
    path = pathlib.Path(path)
    if path.suffix.lower() == ".csv":
        return read_csv(path, name)
    return read_edge_list(path, name=name or path.stem)
